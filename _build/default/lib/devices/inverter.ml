type t = { tech : Tech.t; size : float }

let make tech ~size =
  if size <= 0. then invalid_arg "Inverter.make: size must be positive";
  { tech; size }

let tech t = t.tech
let size t = t.size
let wn_um t = t.size *. Rlc_num.Units.in_um t.tech.Tech.w_unit
let wp_um t = 2. *. wn_um t
let input_cap t = t.tech.Tech.cg_per_um *. (wn_um t +. wp_um t)
let output_junction_cap t = t.tech.Tech.cd_per_um *. (wn_um t +. wp_um t)

let add nl t ~vdd_node ~input ~output =
  let open Rlc_circuit in
  Netlist.nonlinear nl
    (Mosfet.device t.tech.Tech.nmos ~polarity:Mosfet.Nmos ~w_um:(wn_um t) ~d:output ~g:input
       ~s:Netlist.ground
       ~name:(Printf.sprintf "MN_%gx" t.size));
  Netlist.nonlinear nl
    (Mosfet.device t.tech.Tech.pmos ~polarity:Mosfet.Pmos ~w_um:(wp_um t) ~d:output ~g:input
       ~s:vdd_node
       ~name:(Printf.sprintf "MP_%gx" t.size));
  Netlist.capacitor nl ~name:(Printf.sprintf "Cj_%gx" t.size) output Netlist.ground
    (output_junction_cap t)

let add_receiver nl t node =
  Rlc_circuit.Netlist.capacitor nl
    ~name:(Printf.sprintf "Cg_%gx" t.size)
    node Rlc_circuit.Netlist.ground (input_cap t)

let pp fmt t =
  Format.fprintf fmt "inv<%gX, Wn=%.2f um, Wp=%.2f um>" t.size (wn_um t) (wp_um t)
