lib/devices/mosfet.ml: Array Rlc_circuit Tech
