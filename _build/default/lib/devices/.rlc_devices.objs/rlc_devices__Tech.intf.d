lib/devices/tech.mli: Format
