lib/devices/inverter.mli: Format Rlc_circuit Tech
