lib/devices/inverter.ml: Format Mosfet Netlist Printf Rlc_circuit Rlc_num Tech
