lib/devices/mosfet.mli: Rlc_circuit Tech
