lib/devices/testbench.mli: Rlc_circuit Rlc_waveform Tech
