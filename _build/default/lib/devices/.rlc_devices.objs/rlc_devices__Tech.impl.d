lib/devices/tech.ml: Format
