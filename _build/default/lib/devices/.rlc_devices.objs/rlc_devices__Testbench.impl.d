lib/devices/testbench.ml: Inverter Rlc_circuit Rlc_waveform Tech
