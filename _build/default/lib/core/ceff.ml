open Rlc_num
module Pade = Rlc_moments.Pade

type poles =
  | No_poles
  | Single_pole of float
  | Pole_pair of Cx.t * Cx.t

exception Unstable_load of string

let poles_of (p : Pade.t) =
  if p.Pade.b2 = 0. then begin
    if p.Pade.b1 = 0. then No_poles else Single_pole (-1. /. p.Pade.b1)
  end
  else begin
    let s1, s2 = Poly.quadratic_roots ~a:p.Pade.b2 ~b:p.Pade.b1 ~c:1. in
    let scale = Float.max (Cx.norm s1) (Cx.norm s2) in
    if Cx.norm Cx.(s1 -: s2) < 1e-7 *. scale then
      (* Nearly repeated pole: nudge apart so first-order residues apply. *)
      Pole_pair (Cx.scale (1. +. 1e-7) s1, Cx.scale (1. -. 1e-7) s2)
    else Pole_pair (s1, s2)
  end

let check_stable name poles =
  let bad re = re > 0. in
  match poles with
  | No_poles -> ()
  | Single_pole s -> if bad s then raise (Unstable_load name)
  | Pole_pair (s1, s2) ->
      if bad s1.Cx.re || bad s2.Cx.re then raise (Unstable_load name)

let num_at (p : Pade.t) (s : Cx.t) =
  let open Cx in
  re p.Pade.a1 +: (re p.Pade.a2 *: s) +: (re p.Pade.a3 *: s *: s)

let den'_at (p : Pade.t) (s : Cx.t) =
  let open Cx in
  re p.Pade.b1 +: (re (2. *. p.Pade.b2) *: s)

let pole_list = function
  | No_poles -> []
  | Single_pole s -> [ Cx.re s ]
  | Pole_pair (s1, s2) -> [ s1; s2 ]

(* expm1 for complex arguments: e^z - 1, accurate for small |z|. *)
let cexpm1 (z : Cx.t) =
  if Cx.norm z < 1e-8 then Cx.(z +: scale 0.5 (z *: z)) else Cx.(exp z -: one)

let validate_f_tr ~ctx ~f ~tr =
  if not (f > 0. && f <= 1.) then invalid_arg (ctx ^ ": f must be in (0, 1]");
  if tr <= 0. then invalid_arg (ctx ^ ": ramp time must be positive")

(* Ceff over [0, f*tr] for the ramp V = vdd*t/tr:
   Ceff = a1 + (1/(f*tr)) * sum_i num(s_i)/(s_i^2 den'(s_i)) (e^{s_i f tr} - 1). *)
let first_ramp (p : Pade.t) ~f ~tr =
  validate_f_tr ~ctx:"Ceff.first_ramp" ~f ~tr;
  let poles = poles_of p in
  check_stable "first_ramp" poles;
  let acc =
    List.fold_left
      (fun acc s ->
        let open Cx in
        let term = num_at p s /: (s *: s *: den'_at p s) *: cexpm1 (scale (f *. tr) s) in
        acc +: term)
      Cx.zero (pole_list poles)
  in
  p.Pade.a1 +. (Cx.real_part_checked ~tol:1e-6 acc /. (f *. tr))

(* Ceff over [f*tr1, f*tr1 + (1-f)*tr2] for the extended second ramp:
   Ceff = a1 + (1/(1-f)) sum_i num(s_i) (1/(tr2 s_i) + k f) / (s_i den'(s_i))
                         e^{s_i f tr1} (e^{s_i (1-f) tr2} - 1),  k = 1 - tr1/tr2. *)
let second_ramp (p : Pade.t) ~f ~tr1 ~tr2 =
  if not (f > 0. && f < 1.) then invalid_arg "Ceff.second_ramp: f must be in (0, 1)";
  if tr1 <= 0. || tr2 <= 0. then invalid_arg "Ceff.second_ramp: ramp times must be positive";
  let poles = poles_of p in
  check_stable "second_ramp" poles;
  let k = 1. -. (tr1 /. tr2) in
  let acc =
    List.fold_left
      (fun acc s ->
        let open Cx in
        let weight = (inv (scale tr2 s) +: re (k *. f)) /: (s *: den'_at p s) in
        let term =
          num_at p s *: weight *: exp (scale (f *. tr1) s)
          *: cexpm1 (scale ((1. -. f) *. tr2) s)
        in
        acc +: term)
      Cx.zero (pole_list poles)
  in
  p.Pade.a1 +. (Cx.real_part_checked ~tol:1e-6 acc /. (1. -. f))

(* Exact inverse-Laplace current drawn by the rational load from a ramp
   source of slope vdd/tr (valid while the ramp is still rising). *)
let ramp_current (p : Pade.t) ~vdd ~tr t =
  let poles = poles_of p in
  let transient =
    List.fold_left
      (fun acc s ->
        let open Cx in
        acc +: (num_at p s /: (s *: den'_at p s) *: exp (scale t s)))
      Cx.zero (pole_list poles)
  in
  vdd /. tr *. (p.Pade.a1 +. Cx.real_part_checked ~tol:1e-5 transient)

(* Current of the extended second-ramp waveform (slope vdd/tr2 plus the
   breakpoint offset); same residue structure as [second_ramp]. *)
let second_ramp_current (p : Pade.t) ~vdd ~f ~tr1 ~tr2 t =
  let poles = poles_of p in
  let k = 1. -. (tr1 /. tr2) in
  let transient =
    List.fold_left
      (fun acc s ->
        let open Cx in
        acc +: (num_at p s *: (inv (scale tr2 s) +: re (k *. f)) /: den'_at p s *: exp (scale t s)))
      Cx.zero (pole_list poles)
  in
  vdd *. ((p.Pade.a1 /. tr2) +. Cx.real_part_checked ~tol:1e-5 transient)

let first_ramp_numeric (p : Pade.t) ~f ~tr =
  validate_f_tr ~ctx:"Ceff.first_ramp_numeric" ~f ~tr;
  check_stable "first_ramp_numeric" (poles_of p);
  let q =
    Quadrature.simpson_adaptive ~rel_tol:1e-12 (ramp_current p ~vdd:1. ~tr) ~a:0. ~b:(f *. tr)
  in
  q /. f

let second_ramp_numeric (p : Pade.t) ~f ~tr1 ~tr2 =
  if not (f > 0. && f < 1.) then invalid_arg "Ceff.second_ramp_numeric: f must be in (0, 1)";
  if tr1 <= 0. || tr2 <= 0. then
    invalid_arg "Ceff.second_ramp_numeric: ramp times must be positive";
  check_stable "second_ramp_numeric" (poles_of p);
  let t1 = f *. tr1 and t2 = (f *. tr1) +. ((1. -. f) *. tr2) in
  let q =
    Quadrature.simpson_adaptive ~rel_tol:1e-12
      (second_ramp_current p ~vdd:1. ~f ~tr1 ~tr2)
      ~a:t1 ~b:t2
  in
  q /. (1. -. f)

(* --------------------------- paper's printed real-root forms ---------- *)

let real_poles_exn ctx p =
  match poles_of p with
  | Pole_pair (s1, s2) when s1.Cx.im = 0. && s2.Cx.im = 0. -> (s1.Cx.re, s2.Cx.re)
  | _ -> invalid_arg (ctx ^ ": the paper's Eq. 4/6 forms require two real poles")

(* Eq. 4:
   Ceff1 = a1 + (a1 + a2 s1 + a3 s1^2)/(Tr1 f b2 s1^2 (s1 - s2)) (e^{s1 f Tr1} - 1)
             + (a1 + a2 s2 + a3 s2^2)/(Tr1 f b2 s2^2 (s2 - s1)) (e^{s2 f Tr1} - 1) *)
let first_ramp_paper_real (p : Pade.t) ~f ~tr =
  validate_f_tr ~ctx:"Ceff.first_ramp_paper_real" ~f ~tr;
  let s1, s2 = real_poles_exn "first_ramp_paper_real" p in
  let term s other =
    (p.Pade.a1 +. (p.Pade.a2 *. s) +. (p.Pade.a3 *. s *. s))
    /. (tr *. f *. p.Pade.b2 *. s *. s *. (s -. other))
    *. (Float.exp (s *. f *. tr) -. 1.)
  in
  p.Pade.a1 +. term s1 s2 +. term s2 s1

(* Eq. 6:
   Ceff2 = a1 + A e^{s1 f Tr1} (e^{s1 (1-f) Tr2} - 1)
              + B e^{s2 f Tr1} (e^{s2 (1-f) Tr2} - 1)
   A = (a1 + a2 s1 + a3 s1^2)(1 + k f s1 Tr2) / ((1-f) b2 s1^2 (s1 - s2) Tr2) *)
let second_ramp_paper_real (p : Pade.t) ~f ~tr1 ~tr2 =
  if not (f > 0. && f < 1.) then invalid_arg "Ceff.second_ramp_paper_real: f in (0,1)";
  let s1, s2 = real_poles_exn "second_ramp_paper_real" p in
  let k = 1. -. (tr1 /. tr2) in
  let coeff s other =
    (p.Pade.a1 +. (p.Pade.a2 *. s) +. (p.Pade.a3 *. s *. s))
    *. (1. +. (k *. f *. s *. tr2))
    /. ((1. -. f) *. p.Pade.b2 *. s *. s *. (s -. other) *. tr2)
  in
  let term s other =
    coeff s other *. Float.exp (s *. f *. tr1) *. (Float.exp (s *. (1. -. f) *. tr2) -. 1.)
  in
  p.Pade.a1 +. term s1 s2 +. term s2 s1
