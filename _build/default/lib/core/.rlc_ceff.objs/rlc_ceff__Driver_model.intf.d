lib/core/driver_model.mli: Format Rlc_liberty Rlc_moments Rlc_tline Rlc_waveform Screen
