lib/core/driver_model.ml: Ceff Float Format List Printf Rlc_liberty Rlc_moments Rlc_num Rlc_tline Rlc_waveform Screen
