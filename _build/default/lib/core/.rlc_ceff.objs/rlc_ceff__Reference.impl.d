lib/core/reference.ml: Float List Rlc_circuit Rlc_devices Rlc_tline Rlc_waveform
