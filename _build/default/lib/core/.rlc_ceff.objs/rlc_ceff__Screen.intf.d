lib/core/screen.mli: Format Rlc_tline
