lib/core/evaluate.mli: Driver_model Format Reference Rlc_devices Rlc_tline
