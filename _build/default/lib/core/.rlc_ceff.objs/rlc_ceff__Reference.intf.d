lib/core/reference.mli: Rlc_devices Rlc_tline Rlc_waveform
