lib/core/evaluate.ml: Driver_model Format Reference Rlc_devices Rlc_liberty Rlc_num Rlc_parasitics Rlc_tline Rlc_waveform Screen
