lib/core/experiments.ml: Driver_model Evaluate Float List Printf Rlc_liberty Rlc_waveform Screen
