lib/core/ceff.mli: Rlc_moments Rlc_num
