lib/core/experiments.mli: Evaluate Screen
