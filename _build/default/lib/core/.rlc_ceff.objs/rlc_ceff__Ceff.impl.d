lib/core/ceff.ml: Cx Float List Poly Quadrature Rlc_moments Rlc_num
