lib/core/screen.ml: Format Rlc_tline
