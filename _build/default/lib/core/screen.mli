(** Inductance-significance screen (paper Eq. 9, after Deutsch and
    Ismail/Friedman/Neves).

    All four criteria must hold for transmission-line treatment:
    - the fan-out load is small against the line: [CL << C·l];
    - the line is not overdamped: [R·l <= 2 Z0];
    - the driver is strong: [Rs < Z0];
    - the {e driver output} initial ramp beats the round trip:
      [Tr1 < 2 tf].

    The paper's refinement over Ismail et al. is the last criterion: it uses
    the output initial-ramp time obtained from the Ceff1 iteration rather
    than the input transition time, because inductive behaviour tracks the
    driver's output edge rate. *)

type thresholds = {
  cl_ratio_max : float;  (** [CL <= cl_ratio_max * C·l]; default 0.3 *)
  rl_z0_max : float;  (** [R·l <= rl_z0_max * Z0]; default 2.0 *)
  rs_z0_max : float;  (** [Rs < rs_z0_max * Z0]; default 1.0 *)
  tr_tf_max : float;  (** [Tr1 < tr_tf_max * tf]; default 2.0 *)
}

val default_thresholds : thresholds

type verdict = {
  cl_ok : bool;
  rl_ok : bool;
  rs_ok : bool;
  tr_ok : bool;
  significant : bool;  (** conjunction of the four *)
  cl_ratio : float;
  rl_over_z0 : float;
  rs_over_z0 : float;
  tr1_over_tf : float;
}

val evaluate :
  ?thresholds:thresholds ->
  line:Rlc_tline.Line.t -> cl:float -> rs:float -> tr1:float -> unit -> verdict

val evaluate_input_slew :
  ?thresholds:thresholds ->
  line:Rlc_tline.Line.t -> cl:float -> rs:float -> input_slew:float -> unit -> verdict
(** The Ismail/Friedman/Neves criterion the paper argues against: same
    checks, but the time-of-flight condition compares the {e input}
    transition time instead of the driver-output initial ramp.  Exposed for
    the ablation bench, which counts how often the two screens disagree and
    shows that the output-based rule tracks actual waveform morphology
    (Section 5's argument, citing [8]). *)

val pp : Format.formatter -> verdict -> unit
