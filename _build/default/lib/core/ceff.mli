(** Charge-based effective capacitances (paper Section 4, Eqs. 4–7).

    Given the 3/2 Padé driving-point admittance
    [Y(s) = (a1 s + a2 s² + a3 s³)/(1 + b1 s + b2 s²)], the effective
    capacitance over a transition interval is defined by equating the charge
    the rational load absorbs to the charge a single capacitor would absorb
    over the same interval:

    - {!first_ramp} integrates the current of the ramp [V = Vdd·t/tr] over
      [\[0, f·tr\]] and divides by [f·Vdd].  With [f] = the Eq. 1 breakpoint
      this is the paper's Ceff1; with [f = 1] it is the classic single-Ceff
      (charge to 100 %); with [f = 0.5] the charge-to-50 % variant of
      Figure 3.
    - {!second_ramp} integrates the extended second-ramp waveform
      [V = Vdd·t/tr2 + (1 - tr1/tr2)·f·Vdd] over
      [\[f·tr1, f·tr1 + (1-f)·tr2\]] and divides by [(1-f)·Vdd] — the
      paper's Ceff2.

    Everything is evaluated in complex arithmetic over the poles of
    [b2 s² + b1 s + 1], which covers the paper's separate real-root (Eqs. 4,
    6) and imaginary-root (Eqs. 5, 7) cases in one code path; the printed
    real-root forms are also implemented verbatim ({!first_ramp_paper_real},
    {!second_ramp_paper_real}) and checked equal in the test suite.  [Vdd]
    cancels throughout, so no supply argument appears. *)

type poles =
  | No_poles  (** pure capacitance: [b1 = b2 = 0] *)
  | Single_pole of float  (** [b2 = 0], pole at [-1/b1] *)
  | Pole_pair of Rlc_num.Cx.t * Rlc_num.Cx.t
      (** roots of [b2 s² + b1 s + 1]; a nearly-repeated pair is split by a
          relative [1e-7] nudge so the residue formulas stay finite *)

val poles_of : Rlc_moments.Pade.t -> poles

exception Unstable_load of string
(** Raised when a fitted load has a right-half-plane pole: charge integrals
    would diverge.  (Does not occur for physical RLC loads; guards against
    corrupted moment input.) *)

val first_ramp : Rlc_moments.Pade.t -> f:float -> tr:float -> float
(** Requires [0 < f <= 1] and [tr > 0]. *)

val second_ramp : Rlc_moments.Pade.t -> f:float -> tr1:float -> tr2:float -> float
(** Requires [0 < f < 1], [tr1 > 0], [tr2 > 0]. *)

val first_ramp_numeric : Rlc_moments.Pade.t -> f:float -> tr:float -> float
(** Adaptive-quadrature evaluation of the same charge integral (oracle). *)

val second_ramp_numeric : Rlc_moments.Pade.t -> f:float -> tr1:float -> tr2:float -> float

val first_ramp_paper_real : Rlc_moments.Pade.t -> f:float -> tr:float -> float
(** Eq. 4 exactly as printed; raises [Invalid_argument] unless both poles are
    real. *)

val second_ramp_paper_real : Rlc_moments.Pade.t -> f:float -> tr1:float -> tr2:float -> float
(** Eq. 6 exactly as printed (real poles only). *)

val ramp_current : Rlc_moments.Pade.t -> vdd:float -> tr:float -> float -> float
(** [ramp_current pade ~vdd ~tr t]: the exact inverse-Laplace current drawn
    from the ramp source by the rational load (used by oracles, figures and
    tests). *)
