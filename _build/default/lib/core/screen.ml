type thresholds = {
  cl_ratio_max : float;
  rl_z0_max : float;
  rs_z0_max : float;
  tr_tf_max : float;
}

let default_thresholds =
  { cl_ratio_max = 0.3; rl_z0_max = 2.0; rs_z0_max = 1.0; tr_tf_max = 2.0 }

type verdict = {
  cl_ok : bool;
  rl_ok : bool;
  rs_ok : bool;
  tr_ok : bool;
  significant : bool;
  cl_ratio : float;
  rl_over_z0 : float;
  rs_over_z0 : float;
  tr1_over_tf : float;
}

let evaluate ?(thresholds = default_thresholds) ~line ~cl ~rs ~tr1 () =
  let z0 = Rlc_tline.Line.z0 line in
  let cl_ratio = cl /. Rlc_tline.Line.total_c line in
  let rl_over_z0 = Rlc_tline.Line.total_r line /. z0 in
  let rs_over_z0 = rs /. z0 in
  let tr1_over_tf = tr1 /. Rlc_tline.Line.time_of_flight line in
  let cl_ok = cl_ratio <= thresholds.cl_ratio_max in
  let rl_ok = rl_over_z0 <= thresholds.rl_z0_max in
  let rs_ok = rs_over_z0 < thresholds.rs_z0_max in
  let tr_ok = tr1_over_tf < thresholds.tr_tf_max in
  {
    cl_ok;
    rl_ok;
    rs_ok;
    tr_ok;
    significant = cl_ok && rl_ok && rs_ok && tr_ok;
    cl_ratio;
    rl_over_z0;
    rs_over_z0;
    tr1_over_tf;
  }

let pp fmt v =
  let mark ok = if ok then "ok" else "FAIL" in
  Format.fprintf fmt
    "screen<CL/Cl=%.2f %s, Rl/Z0=%.2f %s, Rs/Z0=%.2f %s, Tr1/tf=%.2f %s => %s>" v.cl_ratio
    (mark v.cl_ok) v.rl_over_z0 (mark v.rl_ok) v.rs_over_z0 (mark v.rs_ok) v.tr1_over_tf
    (mark v.tr_ok)
    (if v.significant then "inductive" else "RC-like")

let evaluate_input_slew ?thresholds ~line ~cl ~rs ~input_slew () =
  evaluate ?thresholds ~line ~cl ~rs ~tr1:input_slew ()
