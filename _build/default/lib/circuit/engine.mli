(** Transient and DC analysis.

    Pure nodal formulation: reactive elements become conductance + history
    current-source companion models (trapezoidal by default, backward Euler
    available for damping comparisons), nonlinear devices are handled with
    Newton iteration inside every timestep, and the linear solve uses a
    banded factorization sized to the netlist's natural bandwidth (dense LU
    fallback), so uniform-ladder transients cost O(nodes) per step. *)

module Waveform = Rlc_waveform.Waveform

type integration = Trapezoidal | Backward_euler

type options = {
  dt : float;  (** fixed timestep, seconds *)
  t_stop : float;
  integration : integration;
  newton_tol : float;  (** max |dV| (volts) for Newton convergence *)
  newton_max : int;
  dv_limit : float;  (** per-iteration Newton voltage step clamp, volts *)
}

val default_options : dt:float -> t_stop:float -> options
(** Trapezoidal, [newton_tol = 1e-9] V, [newton_max = 60],
    [dv_limit = 0.5] V. *)

type result

val transient : ?options:options -> dt:float -> t_stop:float -> Netlist.t -> result
(** Runs DC operating point at [t = 0] then steps to [t_stop].  Either pass
    a full [options] record or just [dt]/[t_stop].  Raises [Failure] if
    Newton fails to converge at any timestep. *)

val times : result -> float array
val voltage : result -> Netlist.node -> Waveform.t
val voltage_at : result -> Netlist.node -> float -> float
val newton_total : result -> int
val newton_worst : result -> int
val steps : result -> int

val dc_operating_point : ?t:float -> Netlist.t -> float array
(** Newton DC solution (capacitors open, inductors shorted through 1 mOhm)
    with sources evaluated at time [t] (default 0).  Returns the voltage of
    every node, indexed by node id. *)
