lib/circuit/netlist.ml: Array Float Format List Option Printf
