lib/circuit/engine.mli: Netlist Rlc_waveform
