lib/circuit/engine.ml: Array Banded Float Int Linalg List Netlist Printf Rlc_num Rlc_waveform
