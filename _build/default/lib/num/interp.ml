let check_axis name xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg (Printf.sprintf "Interp: axis %s needs >= 2 points" name);
  for i = 0 to n - 2 do
    if xs.(i + 1) <= xs.(i) then
      invalid_arg (Printf.sprintf "Interp: axis %s not strictly increasing at %d" name i)
  done

let bracket xs x =
  let n = Array.length xs in
  if x <= xs.(0) then 0
  else if x >= xs.(n - 1) then n - 2
  else begin
    (* Binary search for the segment containing x. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let linear ~xs ~ys x =
  check_axis "x" xs;
  if Array.length ys <> Array.length xs then invalid_arg "Interp.linear: length mismatch";
  let i = bracket xs x in
  let t = (x -. xs.(i)) /. (xs.(i + 1) -. xs.(i)) in
  ys.(i) +. (t *. (ys.(i + 1) -. ys.(i)))

type grid2 = { xs : float array; ys : float array; values : float array array }

let make_grid2 ~xs ~ys ~values =
  check_axis "x" xs;
  check_axis "y" ys;
  if Array.length values <> Array.length xs then invalid_arg "Interp.make_grid2: row count";
  Array.iter
    (fun row ->
      if Array.length row <> Array.length ys then invalid_arg "Interp.make_grid2: column count")
    values;
  { xs; ys; values }

let bilinear g x y =
  let i = bracket g.xs x and j = bracket g.ys y in
  let tx = (x -. g.xs.(i)) /. (g.xs.(i + 1) -. g.xs.(i)) in
  let ty = (y -. g.ys.(j)) /. (g.ys.(j + 1) -. g.ys.(j)) in
  let v00 = g.values.(i).(j)
  and v01 = g.values.(i).(j + 1)
  and v10 = g.values.(i + 1).(j)
  and v11 = g.values.(i + 1).(j + 1) in
  ((1. -. tx) *. (((1. -. ty) *. v00) +. (ty *. v01)))
  +. (tx *. (((1. -. ty) *. v10) +. (ty *. v11)))

let grid2_map f g = { g with values = Array.map (Array.map f) g.values }
