(** Piecewise-linear interpolation on 1-D and 2-D grids.

    NLDM cell tables (delay/slew vs input slew x load capacitance) are looked
    up through {!bilinear}; out-of-range queries extrapolate linearly from
    the edge cells, matching common STA tool behaviour. *)

val linear : xs:float array -> ys:float array -> float -> float
(** [linear ~xs ~ys x]: [xs] strictly increasing, same length as [ys]
    (>= 2 entries, else [Invalid_argument]).  Extrapolates beyond the ends
    using the first/last segment slope. *)

val bracket : float array -> float -> int
(** [bracket xs x] returns [i] such that segment [(xs.(i), xs.(i+1))] is used
    for (extra)interpolation at [x]; clamped to [\[0, n-2\]]. *)

type grid2 = {
  xs : float array;  (** first index, strictly increasing *)
  ys : float array;  (** second index, strictly increasing *)
  values : float array array;  (** [values.(i).(j)] at [(xs.(i), ys.(j))] *)
}

val make_grid2 : xs:float array -> ys:float array -> values:float array array -> grid2
(** Validates monotonicity and dimensions. *)

val bilinear : grid2 -> float -> float -> float
(** Bilinear interpolation with linear extrapolation outside the grid. *)

val grid2_map : (float -> float) -> grid2 -> grid2
