type t = Complex.t = { re : float; im : float }

let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let re x = { re = x; im = 0. }
let make re im = { re; im }
let ( +: ) = Complex.add
let ( -: ) = Complex.sub
let ( *: ) = Complex.mul
let ( /: ) = Complex.div
let neg = Complex.neg
let scale a z = { re = a *. z.re; im = a *. z.im }
let conj = Complex.conj
let exp = Complex.exp
let sqrt = Complex.sqrt
let inv = Complex.inv
let norm = Complex.norm
let arg = Complex.arg
let is_finite z = Float.is_finite z.re && Float.is_finite z.im

let approx_equal ?(tol = 1e-9) a b =
  let close x y = Float.abs (x -. y) <= tol *. (1. +. Float.abs x +. Float.abs y) in
  close a.re b.re && close a.im b.im

let real_part_checked ?(tol = 1e-6) z =
  let mag = Float.max (norm z) 1e-300 in
  if Float.abs z.im > tol *. Float.max mag 1. then
    invalid_arg
      (Printf.sprintf "Cx.real_part_checked: imaginary residue %g (|z|=%g)" z.im mag)
  else z.re

let pp fmt z =
  if z.im = 0. then Format.fprintf fmt "%g" z.re
  else if z.im > 0. then Format.fprintf fmt "%g+%gi" z.re z.im
  else Format.fprintf fmt "%g-%gi" z.re (-.z.im)
