(** Numerical integration.

    The test suite uses adaptive Simpson quadrature of the exact
    inverse-Laplace driver current as an independent oracle for the Ceff
    closed forms (Eqs. 4-7); the waveform layer uses the trapezoid rule on
    sampled data. *)

val simpson_adaptive : ?rel_tol:float -> ?abs_tol:float -> ?max_depth:int ->
  (float -> float) -> a:float -> b:float -> float
(** Adaptive Simpson integration of [f] over [\[a, b\]].  Defaults:
    [rel_tol = 1e-10], [abs_tol = 1e-300], [max_depth = 40]. *)

val trapezoid_sampled : float array -> float array -> float
(** [trapezoid_sampled ts ys] integrates samples [(ts.(i), ys.(i))]; times
    must be non-decreasing.  Raises [Invalid_argument] on length mismatch or
    fewer than two samples. *)

val simpson_fixed : (float -> float) -> a:float -> b:float -> n:int -> float
(** Composite Simpson with [n] (rounded up to even) subintervals. *)
