(** Tridiagonal systems (Thomas algorithm).

    The nodal matrix of a driver + uniform RLC ladder, with nodes numbered
    along the line, is tridiagonal; the transient engine solves one such
    system per Newton iteration, so this O(n) path is what makes sweeping
    hundreds of reference simulations cheap. *)

type t = {
  lower : float array;  (** [lower.(i)] multiplies x_{i-1} in row i; [lower.(0)] ignored *)
  diag : float array;
  upper : float array;  (** [upper.(i)] multiplies x_{i+1} in row i; last entry ignored *)
}

val create : int -> t
(** All-zero system of the given dimension. *)

val dim : t -> int
val copy : t -> t

exception Singular of int

val solve : t -> float array -> float array
(** Thomas algorithm without pivoting.  Raises {!Singular} on a vanishing
    pivot; nodal matrices stamped from positive R/L/C companion conductances
    are strictly diagonally dominant so this does not occur in practice. *)

val solve_in_place : t -> float array -> unit
(** Destructive variant: overwrites the system and stores the solution in the
    right-hand-side array.  Used by the transient inner loop to avoid
    allocation. *)

val mat_vec : t -> float array -> float array

val to_dense : t -> Linalg.mat
