(** All complex roots of real polynomials of arbitrary degree
    (Aberth–Ehrlich simultaneous iteration).

    {!Poly.roots} covers the closed-form degrees the paper's 3/2 fit needs;
    this module serves the AWE generalization (order-q reduced admittances),
    whose denominators exceed degree 3. *)

val roots : ?max_iter:int -> ?tol:float -> Poly.t -> Cx.t list
(** Roots of the polynomial (degree >= 1; raises [Invalid_argument] on
    constants and on a zero leading coefficient after trimming).  Default
    [tol = 1e-12] (relative correction), [max_iter = 200].  Real-coefficient
    symmetry is not enforced structurally but holds to solver tolerance;
    roots are returned unordered. *)

val residual : Poly.t -> Cx.t -> float
(** |p(z)| scaled by the polynomial's coefficient magnitude at |z| — test
    helper. *)
