type t = float array

let of_coeffs c =
  let n = Array.length c in
  let rec last_nonzero i = if i <= 0 then 0 else if c.(i) <> 0. then i else last_nonzero (i - 1) in
  if n = 0 then [| 0. |]
  else
    let d = last_nonzero (n - 1) in
    Array.sub c 0 (d + 1)

let coeffs p = Array.copy p
let zero = [| 0. |]
let one = [| 1. |]
let x = [| 0.; 1. |]
let constant c = of_coeffs [| c |]
let degree p = Array.length p - 1

let eval p x =
  let acc = ref 0. in
  for i = Array.length p - 1 downto 0 do
    acc := (!acc *. x) +. p.(i)
  done;
  !acc

let eval_cx p z =
  let acc = ref Cx.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Cx.( +: ) (Cx.( *: ) !acc z) (Cx.re p.(i))
  done;
  !acc

let add p q =
  let n = Int.max (Array.length p) (Array.length q) in
  let get a i = if i < Array.length a then a.(i) else 0. in
  of_coeffs (Array.init n (fun i -> get p i +. get q i))

let scale a p = of_coeffs (Array.map (fun c -> a *. c) p)
let sub p q = add p (scale (-1.) q)

let mul p q =
  let n = Array.length p + Array.length q - 1 in
  let r = Array.make n 0. in
  Array.iteri (fun i pi -> Array.iteri (fun j qj -> r.(i + j) <- r.(i + j) +. (pi *. qj)) q) p;
  of_coeffs r

let derivative p =
  if Array.length p <= 1 then zero
  else of_coeffs (Array.init (Array.length p - 1) (fun i -> float_of_int (i + 1) *. p.(i + 1)))

let equal ?(tol = 0.) p q =
  degree p = degree q
  && Array.for_all2 (fun a b -> Float.abs (a -. b) <= tol *. (1. +. Float.abs a +. Float.abs b)) p q

let quadratic_roots ~a ~b ~c =
  if a = 0. then invalid_arg "Poly.quadratic_roots: a = 0";
  let disc = (b *. b) -. (4. *. a *. c) in
  if disc >= 0. then begin
    let sq = Float.sqrt disc in
    (* Avoid catastrophic cancellation: compute the larger-magnitude root
       first and recover the other from the product c/a. *)
    let q = -0.5 *. (b +. (Float.copy_sign sq b)) in
    let r1 = if q <> 0. then q /. a else 0. in
    let r2 = if q <> 0. then c /. q else -.b /. (2. *. a) in
    (Cx.re r1, Cx.re r2)
  end
  else begin
    let alpha = -.b /. (2. *. a) in
    let beta = Float.sqrt (-.disc) /. (2. *. Float.abs a) in
    (Cx.make alpha beta, Cx.make alpha (-.beta))
  end

let cubic_roots ~a ~b ~c ~d =
  (* Depressed cubic via Cardano; a <> 0. *)
  let b = b /. a and c = c /. a and d = d /. a in
  let p = c -. (b *. b /. 3.) in
  let q = ((2. *. b *. b *. b) -. (9. *. b *. c) +. (27. *. d)) /. 27. in
  let shift = -.b /. 3. in
  let disc = ((q *. q) /. 4.) +. ((p *. p *. p) /. 27.) in
  if disc > 0. then begin
    let sq = Float.sqrt disc in
    let cbrt v = Float.copy_sign (Float.abs v ** (1. /. 3.)) v in
    let u = cbrt ((-.q /. 2.) +. sq) and v = cbrt ((-.q /. 2.) -. sq) in
    let t1 = u +. v in
    let alpha = (-.t1 /. 2.) +. shift in
    let beta = Float.sqrt 3. /. 2. *. Float.abs (u -. v) in
    [ Cx.re (t1 +. shift); Cx.make alpha beta; Cx.make alpha (-.beta) ]
  end
  else begin
    (* Three real roots: trigonometric form. *)
    let r = Float.sqrt (-.p *. p *. p /. 27.) in
    let phi = Float.acos (Float.max (-1.) (Float.min 1. (-.q /. (2. *. r)))) in
    let m = 2. *. Float.sqrt (-.p /. 3.) in
    List.init 3 (fun k ->
        Cx.re ((m *. Float.cos ((phi +. (2. *. Float.pi *. float_of_int k)) /. 3.)) +. shift))
  end

let roots p =
  match Array.length p - 1 with
  | 0 -> []
  | 1 -> [ Cx.re (-.p.(0) /. p.(1)) ]
  | 2 ->
      let r1, r2 = quadratic_roots ~a:p.(2) ~b:p.(1) ~c:p.(0) in
      [ r1; r2 ]
  | 3 -> cubic_roots ~a:p.(3) ~b:p.(2) ~c:p.(1) ~d:p.(0)
  | d -> invalid_arg (Printf.sprintf "Poly.roots: degree %d > 3 unsupported" d)

let pp fmt p =
  let started = ref false in
  Array.iteri
    (fun i c ->
      if c <> 0. || (i = 0 && Array.length p = 1) then begin
        if !started then Format.fprintf fmt " + ";
        (match i with
        | 0 -> Format.fprintf fmt "%g" c
        | 1 -> Format.fprintf fmt "%g x" c
        | _ -> Format.fprintf fmt "%g x^%d" c i);
        started := true
      end)
    p
