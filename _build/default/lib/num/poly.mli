(** Dense univariate polynomials with real coefficients.

    Coefficients are stored in ascending order of degree:
    [\[| c0; c1; c2 |\]] represents [c0 + c1 x + c2 x^2].  These are used for
    admittance numerators/denominators, moment series manipulation, and the
    quadratic pole extraction required by the Ceff closed forms. *)

type t = private float array

val of_coeffs : float array -> t
(** Trailing zero coefficients are trimmed; the zero polynomial is [[|0.|]]. *)

val coeffs : t -> float array
val zero : t
val one : t
val x : t
val constant : float -> t
val degree : t -> int
val eval : t -> float -> float
val eval_cx : t -> Cx.t -> Cx.t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t
val derivative : t -> t

val equal : ?tol:float -> t -> t -> bool

val quadratic_roots : a:float -> b:float -> c:float -> Cx.t * Cx.t
(** Roots of [a x^2 + b x + c] with [a <> 0.], computed with the
    cancellation-safe formula ([q = -(b + sign b * sqrt disc)/2]).  Real roots
    are returned with [im = 0.]; complex roots as a conjugate pair
    [(α + iβ, α - iβ)] with [β > 0.] in the first component. *)

val roots : t -> Cx.t list
(** All complex roots for degree <= 3 (closed forms); raises
    [Invalid_argument] above degree 3. *)

val pp : Format.formatter -> t -> unit
