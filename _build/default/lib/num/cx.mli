(** Complex arithmetic helpers on top of the standard [Complex] type.

    The effective-capacitance closed forms (Eqs. 4-7 of the paper) are
    evaluated uniformly in complex arithmetic: the poles of the fitted
    admittance are the roots of [b2 s^2 + b1 s + 1], which may be real or a
    conjugate pair.  Working in ℂ removes the separate code paths of the
    paper's printed formulas; results of physically real quantities are
    recovered with {!real_part_checked}. *)

type t = Complex.t = { re : float; im : float }

val zero : t
val one : t
val i : t

val re : float -> t
(** [re x] embeds a real number. *)

val make : float -> float -> t

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( /: ) : t -> t -> t
val neg : t -> t

val scale : float -> t -> t
(** [scale a z] is the complex number [a * z] for real [a]. *)

val conj : t -> t
val exp : t -> t
val sqrt : t -> t
val inv : t -> t
val norm : t -> float
val arg : t -> float

val is_finite : t -> bool

val approx_equal : ?tol:float -> t -> t -> bool
(** Componentwise comparison with absolute-plus-relative tolerance
    (default [tol = 1e-9]). *)

val real_part_checked : ?tol:float -> t -> float
(** [real_part_checked z] returns [z.re], raising [Invalid_argument] when the
    imaginary part is not negligible relative to the magnitude (default
    relative tolerance [1e-6]).  Used to assert that charge integrals built
    from conjugate pole pairs collapse to real values. *)

val pp : Format.formatter -> t -> unit
