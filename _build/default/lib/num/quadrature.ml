let simpson_once f a b =
  let m = 0.5 *. (a +. b) in
  ((b -. a) /. 6.) *. (f a +. (4. *. f m) +. f b)

let simpson_adaptive ?(rel_tol = 1e-10) ?(abs_tol = 1e-300) ?(max_depth = 30) f ~a ~b =
  if a = b then 0.
  else begin
    (* Oscillatory integrands produce sub-interval sums near zero, which
       would defeat a purely relative stopping rule (infinite refinement).
       Establish a global magnitude scale first and use it as an absolute
       floor for every sub-interval. *)
    let scale =
      let n = 64 in
      let peak = ref 0. in
      for i = 0 to n do
        let x = a +. ((b -. a) *. float_of_int i /. float_of_int n) in
        peak := Float.max !peak (Float.abs (f x))
      done;
      Float.abs (b -. a) *. !peak
    in
    let floor_tol = Float.max abs_tol (rel_tol *. scale) in
    let rec go a b whole depth tol =
      let m = 0.5 *. (a +. b) in
      let left = simpson_once f a m and right = simpson_once f m b in
      let sum = left +. right in
      let err = Float.abs (sum -. whole) in
      if depth <= 0 || err <= 15. *. Float.max tol (rel_tol *. Float.abs sum) then
        sum +. ((sum -. whole) /. 15.)
      else go a m left (depth - 1) (tol /. 2.) +. go m b right (depth - 1) (tol /. 2.)
    in
    go a b (simpson_once f a b) max_depth floor_tol
  end

let trapezoid_sampled ts ys =
  let n = Array.length ts in
  if Array.length ys <> n then invalid_arg "Quadrature.trapezoid_sampled: length mismatch";
  if n < 2 then invalid_arg "Quadrature.trapezoid_sampled: needs >= 2 samples";
  let acc = ref 0. in
  for i = 0 to n - 2 do
    acc := !acc +. (0.5 *. (ts.(i + 1) -. ts.(i)) *. (ys.(i) +. ys.(i + 1)))
  done;
  !acc

let simpson_fixed f ~a ~b ~n =
  let n = if n mod 2 = 0 then n else n + 1 in
  let h = (b -. a) /. float_of_int n in
  let acc = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let w = if i mod 2 = 1 then 4. else 2. in
    acc := !acc +. (w *. f (a +. (h *. float_of_int i)))
  done;
  !acc *. h /. 3.
