let eval_and_deriv coeffs z =
  (* Horner for p(z) and p'(z) simultaneously. *)
  let open Cx in
  let n = Array.length coeffs in
  let p = ref zero and dp = ref zero in
  for i = n - 1 downto 0 do
    dp := (!dp *: z) +: !p;
    p := (!p *: z) +: re coeffs.(i)
  done;
  (!p, !dp)

let residual poly z =
  let coeffs = Poly.coeffs poly in
  let p, _ = eval_and_deriv coeffs z in
  let scale =
    Array.fold_left
      (fun (acc, zp) c -> (acc +. (Float.abs c *. zp), zp *. Cx.norm z))
      (0., 1.) coeffs
    |> fst
  in
  Cx.norm p /. Float.max scale 1e-300

let roots ?(max_iter = 200) ?(tol = 1e-12) poly =
  let coeffs = Poly.coeffs poly in
  let n = Array.length coeffs - 1 in
  if n < 1 then invalid_arg "Polyroots.roots: degree must be >= 1";
  if coeffs.(n) = 0. then invalid_arg "Polyroots.roots: zero leading coefficient";
  (* Initial guesses: points on a circle whose radius bounds the root
     magnitudes (Cauchy bound), slightly de-phased to break symmetry. *)
  let radius =
    1.
    +. Array.fold_left
         (fun acc c -> Float.max acc (Float.abs (c /. coeffs.(n))))
         0. (Array.sub coeffs 0 n)
  in
  let z =
    Array.init n (fun i ->
        let theta = (2. *. Float.pi *. float_of_int i /. float_of_int n) +. 0.4 in
        Cx.make (radius *. Float.cos theta) (radius *. Float.sin theta))
  in
  let converged = ref false and iter = ref 0 in
  while (not !converged) && !iter < max_iter do
    incr iter;
    let worst = ref 0. in
    for idx = 0 to n - 1 do
      let p, dp = eval_and_deriv coeffs z.(idx) in
      if Cx.norm p > 0. then begin
        let open Cx in
        let newton = if norm dp = 0. then re 1e-6 else p /: dp in
        (* Aberth correction: repel from the other current root estimates. *)
        let repel = ref zero in
        for j = 0 to n - 1 do
          if j <> idx then begin
            let d = z.(idx) -: z.(j) in
            if norm d > 1e-300 then repel := !repel +: inv d
          end
        done;
        let denom = one -: (newton *: !repel) in
        let step = if norm denom < 1e-12 then newton else newton /: denom in
        z.(idx) <- z.(idx) -: step;
        worst := Float.max !worst (norm step /. Float.max 1. (norm z.(idx)))
      end
    done;
    if !worst < tol then converged := true
  done;
  Array.to_list z
