type t = { lower : float array; diag : float array; upper : float array }

exception Singular of int

let create n = { lower = Array.make n 0.; diag = Array.make n 0.; upper = Array.make n 0. }
let dim t = Array.length t.diag

let copy t =
  { lower = Array.copy t.lower; diag = Array.copy t.diag; upper = Array.copy t.upper }

let solve_in_place t b =
  let n = dim t in
  if Array.length b <> n then invalid_arg "Tridiag.solve: size mismatch";
  if n = 0 then ()
  else begin
    if Float.abs t.diag.(0) < 1e-300 then raise (Singular 0);
    for i = 1 to n - 1 do
      let w = t.lower.(i) /. t.diag.(i - 1) in
      t.diag.(i) <- t.diag.(i) -. (w *. t.upper.(i - 1));
      if Float.abs t.diag.(i) < 1e-300 then raise (Singular i);
      b.(i) <- b.(i) -. (w *. b.(i - 1))
    done;
    b.(n - 1) <- b.(n - 1) /. t.diag.(n - 1);
    for i = n - 2 downto 0 do
      b.(i) <- (b.(i) -. (t.upper.(i) *. b.(i + 1))) /. t.diag.(i)
    done
  end

let solve t b =
  let t = copy t and x = Array.copy b in
  solve_in_place t x;
  x

let mat_vec t v =
  let n = dim t in
  Array.init n (fun i ->
      let acc = ref (t.diag.(i) *. v.(i)) in
      if i > 0 then acc := !acc +. (t.lower.(i) *. v.(i - 1));
      if i < n - 1 then acc := !acc +. (t.upper.(i) *. v.(i + 1));
      !acc)

let to_dense t =
  let n = dim t in
  Array.init n (fun i ->
      Array.init n (fun j ->
          if j = i then t.diag.(i)
          else if j = i - 1 then t.lower.(i)
          else if j = i + 1 then t.upper.(i)
          else 0.))
