(** SI unit helpers.

    All internal quantities are plain SI floats (seconds, farads, henries,
    ohms, metres, volts, amperes).  These constructors keep experiment
    definitions readable ([ps 100.], [mm 5.], [nh 5.14]) and the formatters
    render engineering notation for reports. *)

val ps : float -> float
val ns : float -> float
val ff : float -> float
val pf : float -> float
val nh : float -> float
val ph : float -> float
val um : float -> float
val mm : float -> float
val ohm : float -> float
val kohm : float -> float

val in_ps : float -> float
val in_ns : float -> float
val in_ff : float -> float
val in_pf : float -> float
val in_nh : float -> float
val in_um : float -> float
val in_mm : float -> float

val pp_eng : unit:string -> Format.formatter -> float -> unit
(** Engineering notation with 4 significant digits, e.g. [pp_eng ~unit:"F"]
    renders [1.1e-12] as ["1.100 pF"]. *)

val pp_time : Format.formatter -> float -> unit
val pp_cap : Format.formatter -> float -> unit
val pp_ind : Format.formatter -> float -> unit
val pp_res : Format.formatter -> float -> unit
