let ps x = x *. 1e-12
let ns x = x *. 1e-9
let ff x = x *. 1e-15
let pf x = x *. 1e-12
let nh x = x *. 1e-9
let ph x = x *. 1e-12
let um x = x *. 1e-6
let mm x = x *. 1e-3
let ohm x = x
let kohm x = x *. 1e3
let in_ps x = x /. 1e-12
let in_ns x = x /. 1e-9
let in_ff x = x /. 1e-15
let in_pf x = x /. 1e-12
let in_nh x = x /. 1e-9
let in_um x = x /. 1e-6
let in_mm x = x /. 1e-3

let prefixes =
  [ (1e-15, "f"); (1e-12, "p"); (1e-9, "n"); (1e-6, "u"); (1e-3, "m"); (1., ""); (1e3, "k"); (1e6, "M") ]

let pp_eng ~unit fmt x =
  if x = 0. then Format.fprintf fmt "0 %s" unit
  else begin
    let mag = Float.abs x in
    let scale, prefix =
      let rec pick = function
        | [] -> (1e6, "M")
        | [ (s, p) ] -> (s, p)
        | (s, p) :: rest ->
            if mag < s *. 1000. then (s, p) else pick rest
      in
      pick prefixes
    in
    Format.fprintf fmt "%.4g %s%s" (x /. scale) prefix unit
  end

let pp_time fmt x = pp_eng ~unit:"s" fmt x
let pp_cap fmt x = pp_eng ~unit:"F" fmt x
let pp_ind fmt x = pp_eng ~unit:"H" fmt x
let pp_res fmt x = pp_eng ~unit:"Ohm" fmt x
