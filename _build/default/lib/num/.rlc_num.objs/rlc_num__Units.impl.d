lib/num/units.ml: Float Format
