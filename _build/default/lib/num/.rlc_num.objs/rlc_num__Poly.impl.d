lib/num/poly.ml: Array Cx Float Format Int List Printf
