lib/num/quadrature.mli:
