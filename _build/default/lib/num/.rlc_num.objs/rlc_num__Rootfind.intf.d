lib/num/rootfind.mli:
