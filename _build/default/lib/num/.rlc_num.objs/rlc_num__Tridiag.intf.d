lib/num/tridiag.mli: Linalg
