lib/num/linalg.mli:
