lib/num/tridiag.ml: Array Float
