lib/num/rootfind.ml: Float Int
