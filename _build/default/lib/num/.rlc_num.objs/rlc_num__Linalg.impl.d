lib/num/linalg.ml: Array Float Fun
