lib/num/cx.mli: Complex Format
