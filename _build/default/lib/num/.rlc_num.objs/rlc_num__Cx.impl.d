lib/num/cx.ml: Complex Float Format Printf
