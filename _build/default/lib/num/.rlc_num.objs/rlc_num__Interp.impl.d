lib/num/interp.ml: Array Printf
