lib/num/units.mli: Format
