lib/num/polyroots.mli: Cx Poly
