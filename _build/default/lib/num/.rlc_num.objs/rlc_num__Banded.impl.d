lib/num/banded.ml: Array Float Int
