lib/num/interp.mli:
