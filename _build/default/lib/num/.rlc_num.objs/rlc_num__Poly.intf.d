lib/num/poly.mli: Cx Format
