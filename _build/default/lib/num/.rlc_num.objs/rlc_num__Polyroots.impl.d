lib/num/polyroots.ml: Array Cx Float Poly
