lib/num/banded.mli: Linalg
