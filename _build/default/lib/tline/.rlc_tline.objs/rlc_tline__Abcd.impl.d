lib/tline/abcd.ml: Array Cx Line Poly Rlc_num
