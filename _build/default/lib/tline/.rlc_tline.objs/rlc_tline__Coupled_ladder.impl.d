lib/tline/coupled_ladder.ml: Float Ladder Line Printf Rlc_circuit
