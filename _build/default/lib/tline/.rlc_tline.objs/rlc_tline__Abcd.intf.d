lib/tline/abcd.mli: Line Rlc_num
