lib/tline/line.mli: Format
