lib/tline/transfer.ml: Abcd Array Float Line Poly Rlc_num
