lib/tline/ladder.mli: Line Rlc_circuit
