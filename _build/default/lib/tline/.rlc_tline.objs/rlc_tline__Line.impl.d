lib/tline/line.ml: Float Format Rlc_num
