lib/tline/lattice.mli:
