lib/tline/transfer.mli: Line
