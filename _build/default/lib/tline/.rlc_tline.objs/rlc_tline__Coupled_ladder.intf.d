lib/tline/coupled_ladder.mli: Line Rlc_circuit
