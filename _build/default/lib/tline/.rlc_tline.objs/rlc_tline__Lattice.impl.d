lib/tline/lattice.ml: Float List
