lib/tline/ladder.ml: Float Int Line List Printf Rlc_circuit Rlc_num
