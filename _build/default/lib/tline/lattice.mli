(** Lossless bounce (lattice) diagram.

    Analytic oracle for the transmission-line intuition behind the paper's
    two-ramp model (Section 2): a step source of magnitude [vs] behind
    resistance [rs] launches an initial step [vs * Z0 / (Z0 + Rs)] — the
    paper's Eq. 1 breakpoint — and the near end then stays flat for one round
    trip [2 tf] until the far-end reflection returns.  Used in tests to pin
    the breakpoint and plateau duration produced by the transient engine, and
    in the documentation examples. *)

type t

val create : ?gamma_far:float -> vs:float -> rs:float -> z0:float -> tf:float -> unit -> t
(** [gamma_far] is the far-end reflection coefficient (default [1.] = open
    end, the on-chip case with a small receiver).  [rs >= 0], [z0 > 0],
    [tf > 0]. *)

val gamma_source : t -> float
val initial_step : t -> float
(** [vs * z0 / (z0 + rs)] — Eq. 1 of the paper times [vs]. *)

val near_end_voltage : t -> float -> float
(** Ideal near-end (driving point) voltage at time [t] (step applied at
    [t = 0]); piecewise constant with jumps at [2 k tf]. *)

val far_end_voltage : t -> float -> float
(** Ideal far-end voltage; jumps at odd multiples of [tf]. *)

val near_end_steps : t -> n:int -> (float * float) list
(** First [n] near-end levels as [(arrival_time, level)] pairs, starting with
    [(0, initial step)]. *)
