module Netlist = Rlc_circuit.Netlist

let default_segments line =
  let mm = Rlc_num.Units.in_mm line.Line.length in
  Int.min 400 (Int.max 40 (int_of_float (Float.ceil (20. *. mm))))

type built = {
  near : Netlist.node;
  far : Netlist.node;
  internal : Netlist.node list;
  n_segments : int;
}

let build ?n_segments nl line ~near =
  let n = match n_segments with Some n -> n | None -> default_segments line in
  if n < 1 then invalid_arg "Ladder.build: need at least one segment";
  let fn = float_of_int n in
  let dr = Line.total_r line /. fn
  and dl = Line.total_l line /. fn
  and dc = Line.total_c line /. fn in
  let rec go prev i acc =
    if i > n then (prev, List.rev acc)
    else begin
      (* Series R and L need an intermediate node; allocate both in line
         order to keep the matrix bandwidth at 2. *)
      let mid = Netlist.node nl (Printf.sprintf "lad_m%d" i) in
      let next = Netlist.node nl (Printf.sprintf "lad_n%d" i) in
      Netlist.resistor nl ~name:(Printf.sprintf "Rseg%d" i) prev mid dr;
      Netlist.inductor nl ~name:(Printf.sprintf "Lseg%d" i) mid next dl;
      Netlist.capacitor nl ~name:(Printf.sprintf "Cseg%d" i) next Netlist.ground dc;
      go next (i + 1) (next :: mid :: acc)
    end
  in
  let far, internal = go near 1 [] in
  { near; far; internal; n_segments = n }

let attach_load ?n_segments line ~cl nl node far_ref =
  let b = build ?n_segments nl line ~near:node in
  if cl > 0. then Netlist.capacitor nl ~name:"CL" b.far Netlist.ground cl;
  far_ref := b.far
