module Netlist = Rlc_circuit.Netlist

type built = {
  far_a : Netlist.node;
  far_b : Netlist.node;
  n_segments : int;
}

let build ?n_segments nl line ~k ~cc_total ~near_a ~near_b =
  if k < 0. || k >= 1. then invalid_arg "Coupled_ladder.build: k must be in [0, 1)";
  if cc_total < 0. then invalid_arg "Coupled_ladder.build: negative coupling capacitance";
  let n = match n_segments with Some n -> n | None -> Ladder.default_segments line in
  if n < 1 then invalid_arg "Coupled_ladder.build: need at least one segment";
  let fn = float_of_int n in
  let dr = Line.total_r line /. fn
  and dl = Line.total_l line /. fn
  and dc = Line.total_c line /. fn
  and dcc = cc_total /. fn in
  let rec go prev_a prev_b i =
    if i > n then (prev_a, prev_b)
    else begin
      (* Alternate the two wires' nodes to keep the bandwidth small. *)
      let mid_a = Netlist.node nl (Printf.sprintf "ca_m%d" i) in
      let mid_b = Netlist.node nl (Printf.sprintf "cb_m%d" i) in
      let next_a = Netlist.node nl (Printf.sprintf "ca_n%d" i) in
      let next_b = Netlist.node nl (Printf.sprintf "cb_n%d" i) in
      Netlist.resistor nl ~name:(Printf.sprintf "Ra%d" i) prev_a mid_a dr;
      Netlist.resistor nl ~name:(Printf.sprintf "Rb%d" i) prev_b mid_b dr;
      Netlist.coupled_pair nl
        ~name:(Printf.sprintf "K%d" i)
        (mid_a, next_a) dl (mid_b, next_b) dl ~k;
      Netlist.capacitor nl ~name:(Printf.sprintf "Cga%d" i) next_a Netlist.ground dc;
      Netlist.capacitor nl ~name:(Printf.sprintf "Cgb%d" i) next_b Netlist.ground dc;
      if dcc > 0. then Netlist.capacitor nl ~name:(Printf.sprintf "Cc%d" i) next_a next_b dcc;
      go next_a next_b (i + 1)
    end
  in
  let far_a, far_b = go near_a near_b 1 in
  { far_a; far_b; n_segments = n }

let even_mode_tf line ~k =
  line.Line.length
  *. Float.sqrt (line.Line.l_per_m *. (1. +. k) *. line.Line.c_per_m)

let odd_mode_tf line ~k ~cc_total =
  let cc_per_m = cc_total /. line.Line.length in
  line.Line.length
  *. Float.sqrt (line.Line.l_per_m *. (1. -. k) *. (line.Line.c_per_m +. (2. *. cc_per_m)))

let even_mode_z0 line ~k = Float.sqrt (line.Line.l_per_m *. (1. +. k) /. line.Line.c_per_m)

let odd_mode_z0 line ~k ~cc_total =
  let cc_per_m = cc_total /. line.Line.length in
  Float.sqrt (line.Line.l_per_m *. (1. -. k) /. (line.Line.c_per_m +. (2. *. cc_per_m)))
