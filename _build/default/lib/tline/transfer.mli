(** Far-end transfer-function moments of the loaded line.

    For the voltage transfer [H(s) = Vfar/Vnear = 1 / (A + B·sCL)] the series
    coefficients give the classic delay metrics: [-h1] is the Elmore delay
    of the far end with respect to the near end, and the (h1, h2) pair
    supports the two-moment ("scaled Elmore") 50 % delay estimate used by
    the STA layer when a full linear replay is not warranted. *)

val moments : Line.t -> cl:float -> order:int -> float array
(** [h0 .. h_order] of the far/near transfer; [h0 = 1]. *)

val elmore_delay : Line.t -> cl:float -> float
(** [-h1 = R (C/2 + CL)] for a uniform line (exactly; the distributed
    closed form is reproduced by the series in the tests). *)

val delay_50_estimate : Line.t -> cl:float -> float
(** Two-moment 50 % delay estimate of the far end relative to the near-end
    ramp midpoint: fits the transfer to a single-pole-with-delay form
    [e^{-s T}/(1 + s tau)] by matching h1 and h2, giving
    [T + tau ln 2] (clamped below by the time of flight — the physical
    lower bound a moment metric can undershoot on strongly inductive
    lines). *)
