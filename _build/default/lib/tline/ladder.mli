(** Discretize a uniform line into a lumped RLC ladder.

    Each segment contributes a series R/n + L/n branch followed by a shunt
    C/n capacitor.  With enough segments (the default targets a per-segment
    delay an order of magnitude below the line's time of flight) the ladder
    reproduces transmission-line behaviour — launch step, time of flight,
    reflections — which is exactly what the reference transient simulations
    need. *)

val default_segments : Line.t -> int
(** Segment-count heuristic: [max 40 (ceil (20 * length_mm))], capped at
    400. *)

type built = {
  near : Rlc_circuit.Netlist.node;  (** driving-point node *)
  far : Rlc_circuit.Netlist.node;
  internal : Rlc_circuit.Netlist.node list;  (** excludes [near]; includes [far] *)
  n_segments : int;
}

val build :
  ?n_segments:int ->
  Rlc_circuit.Netlist.t -> Line.t -> near:Rlc_circuit.Netlist.node -> built
(** Append the ladder to the netlist, starting at the existing [near] node
    (typically a driver output), allocating the internal nodes in line order
    so the nodal matrix stays banded. *)

val attach_load : ?n_segments:int -> Line.t -> cl:float -> Rlc_circuit.Netlist.t ->
  Rlc_circuit.Netlist.node -> Rlc_circuit.Netlist.node ref -> unit
(** Convenience for testbench [load] callbacks: build the ladder at the given
    node and add a load capacitance [cl] at the far end; stores the far node
    in the given ref for probing. *)
