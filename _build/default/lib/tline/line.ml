type t = { r_per_m : float; l_per_m : float; c_per_m : float; length : float }

let create ~r_per_m ~l_per_m ~c_per_m ~length =
  if r_per_m <= 0. || l_per_m <= 0. || c_per_m <= 0. || length <= 0. then
    invalid_arg "Line.create: all parameters must be positive";
  { r_per_m; l_per_m; c_per_m; length }

let of_totals ~r ~l ~c ~length =
  create ~r_per_m:(r /. length) ~l_per_m:(l /. length) ~c_per_m:(c /. length) ~length

let total_r t = t.r_per_m *. t.length
let total_l t = t.l_per_m *. t.length
let total_c t = t.c_per_m *. t.length
let z0 t = Float.sqrt (t.l_per_m /. t.c_per_m)
let time_of_flight t = t.length *. Float.sqrt (t.l_per_m *. t.c_per_m)
let attenuation t = Float.exp (-.total_r t /. (2. *. z0 t))
let damping_ratio t = total_r t /. (2. *. z0 t)
let scale_length t length = { t with length }

let pp fmt t =
  Format.fprintf fmt "line<len=%g mm, R=%.4g Ohm, L=%.4g nH, C=%.4g pF, Z0=%.1f Ohm, tf=%.1f ps>"
    (Rlc_num.Units.in_mm t.length) (total_r t)
    (Rlc_num.Units.in_nh (total_l t))
    (Rlc_num.Units.in_pf (total_c t))
    (z0 t)
    (Rlc_num.Units.in_ps (time_of_flight t))
