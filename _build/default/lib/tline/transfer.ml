open Rlc_num

let moments line ~cl ~order =
  let a, b, _ = Abcd.entries_series line ~order in
  (* Denominator of H: A + B * s * CL. *)
  let den = Poly.add a (Poly.mul b (Poly.of_coeffs [| 0.; cl |])) in
  let dc = Poly.coeffs den in
  let get k = if k < Array.length dc then dc.(k) else 0. in
  (* Series inversion of 1/den with den(0) = 1. *)
  let h = Array.make (order + 1) 0. in
  for k = 0 to order do
    if k = 0 then h.(0) <- 1. /. get 0
    else begin
      let acc = ref 0. in
      for j = 1 to k do
        acc := !acc +. (get j *. h.(k - j))
      done;
      h.(k) <- -. !acc /. get 0
    end
  done;
  h

let elmore_delay line ~cl =
  let h = moments line ~cl ~order:1 in
  -.h.(1)

let delay_50_estimate line ~cl =
  let h = moments line ~cl ~order:2 in
  let m1 = -.h.(1) in
  (* Match e^{-sT}/(1 + s tau): h1 = -(T + tau), h2 = T^2/2 + T tau + tau^2,
     hence tau^2 = h2 - h1^2/2 (when positive; an oscillatory response can
     drive it negative, in which case fall back to pure delay). *)
  let tau_sq = h.(2) -. (h.(1) *. h.(1) /. 2.) in
  let tau = if tau_sq > 0. then Float.sqrt tau_sq else 0. in
  let t_delay = Float.max 0. (m1 -. tau) in
  Float.max (Line.time_of_flight line) (t_delay +. (tau *. Float.log 2.))
