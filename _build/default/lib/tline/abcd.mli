(** Exact two-port (ABCD) analysis of the uniform lossy line.

    For a uniform RLC line the chain matrix is
    [A = D = cosh θl], [B = Zc sinh θl], [C = sinh θl / Zc] with
    [θl = sqrt ((R + sL) sC)] (totals).  Because every entry is a power
    series in [s] with {e polynomial} coefficients in [u = (R+sL)sC], the
    driving-point admittance moments of the distributed line (terminated by a
    load capacitance) come out in closed form — this is the oracle the
    ladder/tree moment engine is tested against, and also what the production
    moment path uses for uniform lines. *)

val entries_series : Line.t -> order:int -> Rlc_num.Poly.t * Rlc_num.Poly.t * Rlc_num.Poly.t
(** [(a, b, c)] as truncated power series in [s] up to [s^order]
    ([d = a]). *)

val input_admittance_moments : Line.t -> cl:float -> order:int -> float array
(** Moments [m0 .. m_order] of [Yin(s) = (C + D·sCL)/(A + B·sCL)];
    [m0 = 0] for a capacitively terminated line. *)

val input_admittance : Line.t -> cl:float -> Rlc_num.Cx.t -> Rlc_num.Cx.t
(** Exact complex evaluation at a frequency point (for spot checks of the
    series and of reduced-order fits). *)

val transfer : Line.t -> cl:float -> Rlc_num.Cx.t -> Rlc_num.Cx.t
(** Far-end over near-end voltage transfer [1 / (A + B·YL)] at complex
    frequency [s]. *)
