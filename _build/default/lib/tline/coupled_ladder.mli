(** Two parallel coupled lines as a lumped ladder.

    Each segment carries the series resistance of both wires, a magnetically
    coupled inductor pair (coupling coefficient [k]) and the grounded plus
    mutual capacitances — the standard symmetric two-conductor model behind
    on-chip crosstalk analysis.  The builder allocates the two lines' nodes
    alternately so the nodal matrix stays narrow-banded.

    For identical lossless lines the structure supports the classic modal
    decomposition: the even mode sees [L (1 + k)] and [Cg], the odd mode
    [L (1 - k)] and [Cg + 2 Cc]; {!even_mode_tf} / {!odd_mode_tf} expose the
    resulting flight times (the test-suite oracle). *)

type built = {
  far_a : Rlc_circuit.Netlist.node;
  far_b : Rlc_circuit.Netlist.node;
  n_segments : int;
}

val build :
  ?n_segments:int ->
  Rlc_circuit.Netlist.t ->
  Line.t ->
  k:float ->
  cc_total:float ->
  near_a:Rlc_circuit.Netlist.node ->
  near_b:Rlc_circuit.Netlist.node ->
  built
(** Both wires use the same per-unit-length parameters of [line]; [k] is the
    inductive coupling coefficient in [0, 1), [cc_total] the total
    line-to-line capacitance (farads, may be 0). *)

val even_mode_tf : Line.t -> k:float -> float
val odd_mode_tf : Line.t -> k:float -> cc_total:float -> float
val even_mode_z0 : Line.t -> k:float -> float
val odd_mode_z0 : Line.t -> k:float -> cc_total:float -> float
