(** Uniform RLC transmission line description.

    Carries per-unit-length parasitics plus physical length and exposes the
    transmission-line quantities the paper's model consumes: lossless
    characteristic impedance [Z0 = sqrt(L/C)], time of flight
    [tf = len * sqrt(L C)], and total R/L/C for moment computation and screen
    criteria (Eq. 9). *)

type t = private {
  r_per_m : float;  (** Ohm / m *)
  l_per_m : float;  (** H / m *)
  c_per_m : float;  (** F / m *)
  length : float;  (** m *)
}

val create : r_per_m:float -> l_per_m:float -> c_per_m:float -> length:float -> t
(** All arguments must be positive. *)

val of_totals : r:float -> l:float -> c:float -> length:float -> t
(** Build from total line R (Ohm), L (H), C (F) — the form the paper quotes
    (e.g. 5 mm: 72.44 Ohm, 5.14 nH, 1.10 pF). *)

val total_r : t -> float
val total_l : t -> float
val total_c : t -> float

val z0 : t -> float
(** Lossless characteristic impedance, Ohm. *)

val time_of_flight : t -> float
(** Seconds. *)

val attenuation : t -> float
(** Lossy amplitude attenuation factor of the first traversal,
    [exp (-R_tot / (2 Z0))] — how much of the launched step survives to the
    far end. *)

val damping_ratio : t -> float
(** [R_tot / (2 Z0)]: < 1 indicates transmission-line (underdamped)
    behaviour, one of the Eq. 9 criteria. *)

val scale_length : t -> float -> t
val pp : Format.formatter -> t -> unit
