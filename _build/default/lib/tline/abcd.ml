open Rlc_num

let truncate order p =
  let c = Poly.coeffs p in
  if Array.length c <= order + 1 then p else Poly.of_coeffs (Array.sub c 0 (order + 1))


let entries_series line ~order =
  let r = Line.total_r line and l = Line.total_l line and c = Line.total_c line in
  (* u = (R + sL) * sC, a polynomial starting at s^1: even/odd cosh and
     sinh series in theta*l become finite polynomial sums once truncated. *)
  let u = Poly.of_coeffs [| 0.; r *. c; l *. c |] in
  let series coeff_of_k =
    (* sum over k of u^k * coeff_of_k, truncated to the requested order *)
    let acc = ref Poly.zero and upow = ref Poly.one in
    let k = ref 0 in
    while Poly.degree !upow <= order && !k <= order do
      acc := Poly.add !acc (Poly.scale (coeff_of_k !k) !upow);
      upow := truncate order (Poly.mul !upow u);
      incr k
    done;
    truncate order !acc
  in
  let fact n =
    let rec go acc i = if i <= 1 then acc else go (acc *. float_of_int i) (i - 1) in
    go 1. n
  in
  let a = series (fun k -> 1. /. fact (2 * k)) in
  let sinh_over_theta = series (fun k -> 1. /. fact ((2 * k) + 1)) in
  let b = truncate order (Poly.mul (Poly.of_coeffs [| r; l |]) sinh_over_theta) in
  let c_entry = truncate order (Poly.mul (Poly.of_coeffs [| 0.; c |]) sinh_over_theta) in
  (a, b, c_entry)

let input_admittance_moments line ~cl ~order =
  let a, b, c = entries_series line ~order:(order + 1) in
  let s_cl = Poly.of_coeffs [| 0.; cl |] in
  let num = Poly.add c (truncate (order + 1) (Poly.mul a s_cl)) in
  let den = Poly.add a (truncate (order + 1) (Poly.mul b s_cl)) in
  let coeff p k =
    let cs = Poly.coeffs p in
    if k < Array.length cs then cs.(k) else 0.
  in
  (* Series division y = num/den with den(0) = 1. *)
  let m = Array.make (order + 1) 0. in
  let d0 = coeff den 0 in
  for k = 0 to order do
    let acc = ref (coeff num k) in
    for j = 1 to k do
      acc := !acc -. (coeff den j *. m.(k - j))
    done;
    m.(k) <- !acc /. d0
  done;
  m

let theta_l line s =
  let open Cx in
  let r = Line.total_r line and l = Line.total_l line and c = Line.total_c line in
  sqrt ((re r +: scale l s) *: scale c s)

let entries_cx line s =
  let open Cx in
  let tl = theta_l line s in
  let r = Line.total_r line and l = Line.total_l line and c = Line.total_c line in
  let ch = scale 0.5 (exp tl +: exp (neg tl)) in
  let sh = scale 0.5 (exp tl -: exp (neg tl)) in
  (* sinh(tl)/tl is regular at s = 0; guard the removable singularity. *)
  let sh_over_tl = if norm tl < 1e-12 then one else sh /: tl in
  let a = ch in
  let b = (re r +: scale l s) *: sh_over_tl in
  let c_entry = scale c s *: sh_over_tl in
  (a, b, c_entry)

let input_admittance line ~cl s =
  let open Cx in
  let a, b, c = entries_cx line s in
  let yl = scale cl s in
  (c +: (a *: yl)) /: (a +: (b *: yl))

let transfer line ~cl s =
  let open Cx in
  let a, b, _ = entries_cx line s in
  let yl = scale cl s in
  inv (a +: (b *: yl))
