type t = { vs : float; rs : float; z0 : float; tf : float; gamma_far : float }

let create ?(gamma_far = 1.) ~vs ~rs ~z0 ~tf () =
  if rs < 0. || z0 <= 0. || tf <= 0. then invalid_arg "Lattice.create: invalid parameters";
  if Float.abs gamma_far > 1. then invalid_arg "Lattice.create: |gamma_far| > 1";
  { vs; rs; z0; tf; gamma_far }

let gamma_source t = (t.rs -. t.z0) /. (t.rs +. t.z0)
let initial_step t = t.vs *. t.z0 /. (t.z0 +. t.rs)

(* Waves: v+_0 launched at t=0; at the far end each incident wave reflects
   with gamma_far; back at the source with gamma_s.  The near-end voltage
   after the 2k-th round trip is the accumulated sum of all waves that have
   arrived (incident + their immediate source reflection). *)
let near_end_voltage t time =
  if time < 0. then 0.
  else begin
    let gs = gamma_source t and gf = t.gamma_far in
    let v0 = initial_step t in
    (* At time 0: v0.  At 2k*tf (k >= 1): add v0 * gf^k gs^(k-1) (1 + gs). *)
    let acc = ref v0 and k = ref 1 in
    let continue = ref true in
    while !continue do
      let arrival = 2. *. float_of_int !k *. t.tf in
      if arrival > time || !k > 10_000 then continue := false
      else begin
        let wave = v0 *. (gf ** float_of_int !k) *. (gs ** float_of_int (!k - 1)) in
        acc := !acc +. (wave *. (1. +. gs));
        incr k
      end
    done;
    !acc
  end

let far_end_voltage t time =
  if time < t.tf then 0.
  else begin
    let gs = gamma_source t and gf = t.gamma_far in
    let v0 = initial_step t in
    (* Wave k (k >= 0) arrives at the far end at (2k+1)*tf with amplitude
       v0 (gf gs)^k and deposits (1 + gf) of itself. *)
    let acc = ref 0. and k = ref 0 in
    let continue = ref true in
    while !continue do
      let arrival = (2. *. float_of_int !k *. t.tf) +. t.tf in
      if arrival > time || !k > 10_000 then continue := false
      else begin
        acc := !acc +. (v0 *. ((gf *. gs) ** float_of_int !k) *. (1. +. gf));
        incr k
      end
    done;
    !acc
  end

let near_end_steps t ~n =
  List.init n (fun k ->
      let time = 2. *. float_of_int k *. t.tf in
      (time, near_end_voltage t (time +. (1e-9 *. t.tf))))
