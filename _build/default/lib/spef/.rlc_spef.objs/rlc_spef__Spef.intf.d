lib/spef/spef.mli: Rlc_moments
