lib/spef/spef.ml: Buffer Hashtbl List Map Option Printf Rlc_moments String
