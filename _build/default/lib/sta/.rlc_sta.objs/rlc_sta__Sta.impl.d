lib/sta/sta.ml: Float Format List Rlc_ceff Rlc_devices Rlc_liberty Rlc_num Rlc_tline Rlc_waveform
