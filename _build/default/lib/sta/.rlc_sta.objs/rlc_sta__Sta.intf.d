lib/sta/sta.mli: Format Rlc_ceff Rlc_devices Rlc_tline Rlc_waveform
