(** NLDM-style cell timing tables.

    The paper's flow consumes exactly what a pre-characterized library
    stores: 50 % delay and output transition versus (input slew, load
    capacitance).  We additionally characterize the 20–80 transition and the
    50 %→90 % tail time — the latter feeds the paper's driver on-resistance
    fit (Section 5) without re-simulating.  Lookups are bilinear with edge
    extrapolation, the standard STA behaviour. *)

type lut = {
  slews : float array;  (** input transition axis, seconds, increasing *)
  caps : float array;  (** load capacitance axis, farads, increasing *)
  values : float array array;  (** [values.(i_slew).(j_cap)], seconds *)
}

val make_lut : slews:float array -> caps:float array -> values:float array array -> lut
val lut_lookup : lut -> slew:float -> cap:float -> float

type timing = {
  delay : lut;  (** input 50 % -> output 50 % *)
  slew_10_90 : lut;
  slew_20_80 : lut;
  tail_50_90 : lut;  (** output 50 % -> output 90 % *)
}

type cell = {
  name : string;
  drive_size : float;  (** the X multiplier *)
  vdd : float;
  input_cap : float;  (** farads, for fan-out loading *)
  rise : timing;  (** output-rising arc (input falling) *)
  fall : timing;  (** output-falling arc (input rising) *)
}

val delay : cell -> edge:Rlc_waveform.Measure.edge -> slew:float -> cap:float -> float
(** Output-edge selected arc; [edge] is the {e output} transition
    direction. *)

val slew_10_90 : cell -> edge:Rlc_waveform.Measure.edge -> slew:float -> cap:float -> float
val slew_20_80 : cell -> edge:Rlc_waveform.Measure.edge -> slew:float -> cap:float -> float
val tail_50_90 : cell -> edge:Rlc_waveform.Measure.edge -> slew:float -> cap:float -> float

val ramp_time : cell -> edge:Rlc_waveform.Measure.edge -> slew:float -> cap:float -> float
(** Full-swing saturated-ramp time equivalent to the 10–90 table entry
    (divide by 0.8): this is the [Tr] the effective-capacitance iteration
    exchanges with the tables. *)

val fitted_rs : cell -> edge:Rlc_waveform.Measure.edge -> slew:float -> cap:float -> float
(** The paper's driver on-resistance: fit [v(t) = vdd (1 - e^(-t/RsC))]
    through the 50 % and 90 % points of the characterized output —
    [Rs = tail_50_90 / (C ln 5)]. *)

val pp_cell : Format.formatter -> cell -> unit
