(** Generic Liberty-format syntax: groups, simple and complex attributes.

    Liberty files are nested groups [name (args) { statements }] whose
    statements are simple attributes [name : value;], complex attributes
    [name (arg, ...);], or sub-groups.  This module parses and prints that
    generic shape; {!Liberty_io} maps it onto {!Table.cell}. *)

type value =
  | Num of float
  | Str of string  (** was quoted in the source *)
  | Ident of string

type statement =
  | Attribute of string * value
  | Complex of string * value list
  | Group of group

and group = { gname : string; gargs : value list; body : statement list }

val parse : string -> (group, string) result
(** Parse one top-level group (e.g. [library(...) { ... }]).  Comments
    ([/* */] and [//]) and line continuations ([\\] at end of line) are
    handled.  Errors carry a line number. *)

val to_string : group -> string
(** Pretty-print with 2-space indentation; [parse (to_string g)] returns a
    structurally equal group (round-trip property in the test suite). *)

val find_groups : group -> string -> group list
val find_group : group -> string -> group option
val find_attr : group -> string -> value option
val find_complex : group -> string -> value list option

val float_list_of_value : value -> float list
(** Liberty packs numeric vectors as quoted comma/space-separated strings
    ("1.0, 2.0, 3.0"); this decodes either that or a bare [Num]. *)

val value_of_float_list : float list -> value

val equal_group : group -> group -> bool
(** Structural equality with numeric tolerance 0 (exact round-trip). *)
