type value = Num of float | Str of string | Ident of string

type statement =
  | Attribute of string * value
  | Complex of string * value list
  | Group of group

and group = { gname : string; gargs : value list; body : statement list }

(* ------------------------------------------------------------- lexing *)

type token = TIdent of string | TNum of float | TStr of string
           | TLparen | TRparen | TLbrace | TRbrace | TColon | TSemi | TComma

exception Parse_error of int * string

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let tokens = ref [] in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
    || c = '.' || c = '!' || c = '*'
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '\\' && peek 1 = Some '\n' then begin
      (* Line continuation. *)
      incr line;
      i := !i + 2
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then raise (Parse_error (!line, "unterminated comment"))
    end
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '"' then begin
      let start = !i + 1 in
      incr i;
      while !i < n && src.[!i] <> '"' do
        if src.[!i] = '\n' then incr line;
        incr i
      done;
      if !i >= n then raise (Parse_error (!line, "unterminated string"));
      tokens := (TStr (String.sub src start (!i - start)), !line) :: !tokens;
      incr i
    end
    else if c = '(' then (tokens := (TLparen, !line) :: !tokens; incr i)
    else if c = ')' then (tokens := (TRparen, !line) :: !tokens; incr i)
    else if c = '{' then (tokens := (TLbrace, !line) :: !tokens; incr i)
    else if c = '}' then (tokens := (TRbrace, !line) :: !tokens; incr i)
    else if c = ':' then (tokens := (TColon, !line) :: !tokens; incr i)
    else if c = ';' then (tokens := (TSemi, !line) :: !tokens; incr i)
    else if c = ',' then (tokens := (TComma, !line) :: !tokens; incr i)
    else if (c >= '0' && c <= '9') || c = '-' || c = '+' then begin
      let start = !i in
      incr i;
      while
        !i < n
        &&
        let d = src.[!i] in
        (d >= '0' && d <= '9') || d = '.' || d = 'e' || d = 'E'
        || ((d = '-' || d = '+') && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E'))
      do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      match float_of_string_opt text with
      | Some f -> tokens := (TNum f, !line) :: !tokens
      | None -> raise (Parse_error (!line, "bad number: " ^ text))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      tokens := (TIdent (String.sub src start (!i - start)), !line) :: !tokens
    end
    else raise (Parse_error (!line, Printf.sprintf "unexpected character %C" c))
  done;
  List.rev !tokens

(* ------------------------------------------------------------ parsing *)

type stream = { mutable toks : (token * int) list }

let peek_tok s = match s.toks with [] -> None | (t, _) :: _ -> Some t
let cur_line s = match s.toks with [] -> 0 | (_, l) :: _ -> l
let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let expect s tok msg =
  match s.toks with
  | (t, _) :: rest when t = tok -> s.toks <- rest
  | _ -> raise (Parse_error (cur_line s, "expected " ^ msg))

let parse_value s =
  match s.toks with
  | (TNum f, _) :: rest ->
      s.toks <- rest;
      Num f
  | (TStr str, _) :: rest ->
      s.toks <- rest;
      Str str
  | (TIdent id, _) :: rest ->
      s.toks <- rest;
      Ident id
  | _ -> raise (Parse_error (cur_line s, "expected a value"))

let parse_args s =
  expect s TLparen "'('";
  let rec go acc =
    match peek_tok s with
    | Some TRparen ->
        advance s;
        List.rev acc
    | Some TComma ->
        advance s;
        go acc
    | Some _ -> go (parse_value s :: acc)
    | None -> raise (Parse_error (cur_line s, "unterminated argument list"))
  in
  go []

let rec parse_group_body s gname gargs =
  expect s TLbrace "'{'";
  let rec go acc =
    match peek_tok s with
    | Some TRbrace ->
        advance s;
        List.rev acc
    | Some (TIdent name) -> begin
        advance s;
        match peek_tok s with
        | Some TColon ->
            advance s;
            let v = parse_value s in
            expect s TSemi "';'";
            go (Attribute (name, v) :: acc)
        | Some TLparen -> begin
            let args = parse_args s in
            match peek_tok s with
            | Some TLbrace ->
                let body = parse_group_body s name args in
                go (Group { gname = name; gargs = args; body } :: acc)
            | Some TSemi ->
                advance s;
                go (Complex (name, args) :: acc)
            | _ -> raise (Parse_error (cur_line s, "expected '{' or ';' after " ^ name))
          end
        | _ -> raise (Parse_error (cur_line s, "expected ':' or '(' after " ^ name))
      end
    | Some _ -> raise (Parse_error (cur_line s, "expected a statement"))
    | None -> raise (Parse_error (cur_line s, "unterminated group " ^ gname))
  in
  ignore gargs;
  go []

let parse src =
  match tokenize src with
  | exception Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | toks -> begin
      let s = { toks } in
      match peek_tok s with
      | Some (TIdent name) -> begin
          advance s;
          match
            let args = parse_args s in
            let body = parse_group_body s name args in
            { gname = name; gargs = args; body }
          with
          | g -> if s.toks = [] then Ok g else Error "trailing content after top-level group"
          | exception Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
        end
      | _ -> Error "expected a top-level group"
    end

(* ----------------------------------------------------------- printing *)

let string_of_value = function
  | Num f -> Printf.sprintf "%.17g" f
  | Str s -> Printf.sprintf "%S" s
  | Ident id -> id

let to_string g =
  let buf = Buffer.create 4096 in
  let indent d = Buffer.add_string buf (String.make (2 * d) ' ') in
  let rec emit_group d g =
    indent d;
    Buffer.add_string buf g.gname;
    Buffer.add_string buf " (";
    Buffer.add_string buf (String.concat ", " (List.map string_of_value g.gargs));
    Buffer.add_string buf ") {\n";
    List.iter (emit_stmt (d + 1)) g.body;
    indent d;
    Buffer.add_string buf "}\n"
  and emit_stmt d = function
    | Attribute (name, v) ->
        indent d;
        Buffer.add_string buf (Printf.sprintf "%s : %s;\n" name (string_of_value v))
    | Complex (name, args) ->
        indent d;
        Buffer.add_string buf
          (Printf.sprintf "%s (%s);\n" name (String.concat ", " (List.map string_of_value args)))
    | Group g -> emit_group d g
  in
  emit_group 0 g;
  Buffer.contents buf

(* ---------------------------------------------------------- accessors *)

let find_groups g name =
  List.filter_map (function Group sub when sub.gname = name -> Some sub | _ -> None) g.body

let find_group g name = match find_groups g name with [] -> None | sub :: _ -> Some sub

let find_attr g name =
  List.find_map (function Attribute (n, v) when n = name -> Some v | _ -> None) g.body

let find_complex g name =
  List.find_map (function Complex (n, args) when n = name -> Some args | _ -> None) g.body

let float_list_of_value = function
  | Num f -> [ f ]
  | Ident id -> (
      match float_of_string_opt id with
      | Some f -> [ f ]
      | None -> invalid_arg ("Liberty_ast.float_list_of_value: " ^ id))
  | Str s ->
      String.split_on_char ','
        (String.map (function ' ' | '\t' | '\n' -> ',' | c -> c) s)
      |> List.filter_map (fun tok -> if tok = "" then None else Some (float_of_string tok))

let value_of_float_list fs = Str (String.concat ", " (List.map (Printf.sprintf "%.17g") fs))

let rec equal_group a b =
  a.gname = b.gname && a.gargs = b.gargs
  && List.length a.body = List.length b.body
  && List.for_all2
       (fun x y ->
         match (x, y) with
         | Attribute (n1, v1), Attribute (n2, v2) -> n1 = n2 && v1 = v2
         | Complex (n1, a1), Complex (n2, a2) -> n1 = n2 && a1 = a2
         | Group g1, Group g2 -> equal_group g1 g2
         | _ -> false)
       a.body b.body
