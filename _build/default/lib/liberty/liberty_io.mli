(** Map characterized cells to/from the Liberty subset.

    The emitted library keeps SI units (seconds, farads) and adds two
    non-standard lookup groups per arc — [*_transition_20_80] and
    [*_tail_50_90] — carrying the auxiliary tables the driver-resistance fit
    needs; standard consumers can ignore them.  [cells_of_library
    (library_of_cells cs)] reproduces the cells exactly (round-trip property
    in the test suite). *)

val library_of_cells : name:string -> Table.cell list -> Liberty_ast.group
val cell_to_group : Table.cell -> Liberty_ast.group

val cells_of_library : Liberty_ast.group -> (Table.cell list, string) result
val cell_of_group : Liberty_ast.group -> (Table.cell, string) result

val save : path:string -> name:string -> Table.cell list -> unit
val load : path:string -> (Table.cell list, string) result
