open Rlc_num

type lut = { slews : float array; caps : float array; values : float array array }

let make_lut ~slews ~caps ~values =
  let g = Interp.make_grid2 ~xs:slews ~ys:caps ~values in
  { slews = g.Interp.xs; caps = g.Interp.ys; values = g.Interp.values }

let lut_lookup lut ~slew ~cap =
  Interp.bilinear { Interp.xs = lut.slews; ys = lut.caps; values = lut.values } slew cap

type timing = { delay : lut; slew_10_90 : lut; slew_20_80 : lut; tail_50_90 : lut }

type cell = {
  name : string;
  drive_size : float;
  vdd : float;
  input_cap : float;
  rise : timing;
  fall : timing;
}

let arc cell ~(edge : Rlc_waveform.Measure.edge) =
  match edge with Rlc_waveform.Measure.Rising -> cell.rise | Falling -> cell.fall

let delay cell ~edge ~slew ~cap = lut_lookup (arc cell ~edge).delay ~slew ~cap
let slew_10_90 cell ~edge ~slew ~cap = lut_lookup (arc cell ~edge).slew_10_90 ~slew ~cap
let slew_20_80 cell ~edge ~slew ~cap = lut_lookup (arc cell ~edge).slew_20_80 ~slew ~cap
let tail_50_90 cell ~edge ~slew ~cap = lut_lookup (arc cell ~edge).tail_50_90 ~slew ~cap

let ramp_time cell ~edge ~slew ~cap = slew_10_90 cell ~edge ~slew ~cap /. 0.8

let fitted_rs cell ~edge ~slew ~cap =
  let tail = tail_50_90 cell ~edge ~slew ~cap in
  tail /. (cap *. Float.log 5.)

let pp_cell fmt c =
  Format.fprintf fmt "cell<%s, %gX, vdd=%.2f V, %dx%d grid>" c.name c.drive_size c.vdd
    (Array.length c.rise.delay.slews)
    (Array.length c.rise.delay.caps)
