lib/liberty/characterize.mli: Rlc_devices Table
