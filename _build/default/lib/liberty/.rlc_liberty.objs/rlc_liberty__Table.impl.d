lib/liberty/table.ml: Array Float Format Interp Rlc_num Rlc_waveform
