lib/liberty/liberty_ast.mli:
