lib/liberty/liberty_io.mli: Liberty_ast Table
