lib/liberty/table.mli: Format Rlc_waveform
