lib/liberty/liberty_io.ml: Array Float Fun Liberty_ast List Printf Result Table
