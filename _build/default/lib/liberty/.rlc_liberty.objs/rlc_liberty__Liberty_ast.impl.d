lib/liberty/liberty_ast.ml: Buffer List Printf String
