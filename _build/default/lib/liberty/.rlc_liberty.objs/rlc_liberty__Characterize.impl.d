lib/liberty/characterize.ml: Array Float Hashtbl Inverter Measure Printf Rlc_devices Rlc_num Rlc_waveform Table Tech Testbench
