type edge = Waveform.direction = Rising | Falling

let level_of_frac ~vdd ~edge ~frac =
  match edge with Rising -> frac *. vdd | Falling -> (1. -. frac) *. vdd

let t_frac w ~vdd ~edge ~frac =
  let level = level_of_frac ~vdd ~edge ~frac in
  Waveform.first_crossing w ~level ~direction:edge

let t_frac_exn w ~vdd ~edge ~frac =
  match t_frac w ~vdd ~edge ~frac with
  | Some t -> t
  | None ->
      invalid_arg
        (Printf.sprintf "Measure.t_frac: waveform never reaches %.0f%% of %g V" (frac *. 100.)
           vdd)

let slew w ~vdd ~edge ~lo ~hi =
  match (t_frac w ~vdd ~edge ~frac:lo, t_frac w ~vdd ~edge ~frac:hi) with
  | Some a, Some b -> Some (b -. a)
  | _ -> None

let slew_10_90 w ~vdd ~edge = slew w ~vdd ~edge ~lo:0.1 ~hi:0.9
let slew_20_80 w ~vdd ~edge = slew w ~vdd ~edge ~lo:0.2 ~hi:0.8
let full_swing_of_slew ~lo ~hi s = s /. (hi -. lo)

let delay_50 ~input ~output ~vdd ~input_edge ~output_edge =
  match
    (t_frac input ~vdd ~edge:input_edge ~frac:0.5, t_frac output ~vdd ~edge:output_edge ~frac:0.5)
  with
  | Some a, Some b -> Some (b -. a)
  | _ -> None

let rel_error ~actual ~model = (model -. actual) /. actual
let pct_error ~actual ~model = 100. *. rel_error ~actual ~model
