(** Piecewise-linear voltage sources.

    The model's output — a saturated ramp or the paper's two-ramp waveform —
    is represented as a PWL source so it can both be measured (via
    {!to_waveform}) and replayed into the circuit engine as an ideal driver
    replacement for far-end evaluation (Section 3, step 5 of the paper). *)

type t
(** Breakpoints [(t, v)] with strictly increasing times; the source holds the
    first value before the first breakpoint and the last value after the
    last. *)

val of_points : (float * float) list -> t
(** Raises [Invalid_argument] on fewer than one point or non-increasing
    times. *)

val points : t -> (float * float) list
val eval : t -> float -> float
val shift_time : float -> t -> t

val ramp : t0:float -> v0:float -> v1:float -> transition:float -> t
(** Saturated ramp starting at [t0], swinging [v0 -> v1] linearly over
    [transition] seconds. *)

val two_ramp :
  t0:float -> vdd:float -> f:float -> tr1:float -> tr2:float -> t
(** The paper's Eq. 2 waveform for a rising transition starting at [t0]:
    first ramp of full-swing time [tr1] up to the breakpoint voltage
    [f * vdd] (reached at [t0 + f*tr1]), then a second ramp of full-swing
    time [tr2] from the breakpoint to [vdd] (reached at
    [t0 + f*tr1 + (1-f)*tr2]).  Requires [0 < f <= 1]; with [f = 1] this
    degenerates to a single ramp of time [tr1]. *)

val falling : vdd:float -> t -> t
(** Mirror a rising 0->vdd source into a falling vdd->0 one. *)

val to_waveform : ?n:int -> ?t_end:float -> t -> Waveform.t
(** Sample including all breakpoints; [t_end] extends the final hold value. *)

val end_time : t -> float
val pp : Format.formatter -> t -> unit
