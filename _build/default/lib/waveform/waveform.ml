type t = { ts : float array; vs : float array }

let create ~ts ~vs =
  let n = Array.length ts in
  if Array.length vs <> n then invalid_arg "Waveform.create: length mismatch";
  if n < 2 then invalid_arg "Waveform.create: needs >= 2 samples";
  for i = 0 to n - 2 do
    if ts.(i + 1) < ts.(i) then invalid_arg "Waveform.create: times must be non-decreasing"
  done;
  { ts = Array.copy ts; vs = Array.copy vs }

let of_fun ~t0 ~t1 ~n f =
  if n < 2 then invalid_arg "Waveform.of_fun: n >= 2";
  let ts = Array.init n (fun i -> t0 +. ((t1 -. t0) *. float_of_int i /. float_of_int (n - 1))) in
  { ts; vs = Array.map f ts }

let length w = Array.length w.ts
let times w = Array.copy w.ts
let values w = Array.copy w.vs
let t_start w = w.ts.(0)
let t_end w = w.ts.(Array.length w.ts - 1)

let value_at w t =
  let n = Array.length w.ts in
  if t <= w.ts.(0) then w.vs.(0)
  else if t >= w.ts.(n - 1) then w.vs.(n - 1)
  else begin
    let i = Rlc_num.Interp.bracket w.ts t in
    let t0 = w.ts.(i) and t1 = w.ts.(i + 1) in
    if t1 = t0 then w.vs.(i + 1)
    else w.vs.(i) +. ((t -. t0) /. (t1 -. t0) *. (w.vs.(i + 1) -. w.vs.(i)))
  end

let v_min w = Array.fold_left Float.min Float.infinity w.vs
let v_max w = Array.fold_left Float.max Float.neg_infinity w.vs
let v_final w = w.vs.(Array.length w.vs - 1)
let map_values f w = { w with vs = Array.map f w.vs }
let shift_time dt w = { w with ts = Array.map (fun t -> t +. dt) w.ts }

let clip w ~t_lo ~t_hi =
  if t_hi <= t_lo then invalid_arg "Waveform.clip: empty window";
  let pts = ref [] in
  let push t v = pts := (t, v) :: !pts in
  push t_lo (value_at w t_lo);
  Array.iteri (fun i t -> if t > t_lo && t < t_hi then push t w.vs.(i)) w.ts;
  push t_hi (value_at w t_hi);
  let pts = List.rev !pts in
  { ts = Array.of_list (List.map fst pts); vs = Array.of_list (List.map snd pts) }

let resample w ~n = of_fun ~t0:(t_start w) ~t1:(t_end w) ~n (value_at w)

type direction = Rising | Falling

let crossings w ~level ~direction =
  let n = Array.length w.ts in
  let out = ref [] in
  for i = 0 to n - 2 do
    let v0 = w.vs.(i) and v1 = w.vs.(i + 1) in
    let hit =
      match direction with
      | Rising -> v0 < level && v1 >= level
      | Falling -> v0 > level && v1 <= level
    in
    if hit then begin
      let t0 = w.ts.(i) and t1 = w.ts.(i + 1) in
      let t = if v1 = v0 then t1 else t0 +. ((level -. v0) /. (v1 -. v0) *. (t1 -. t0)) in
      out := t :: !out
    end
  done;
  List.rev !out

let first_crossing w ~level ~direction =
  match crossings w ~level ~direction with [] -> None | t :: _ -> Some t

let last_crossing w ~level ~direction =
  match List.rev (crossings w ~level ~direction) with [] -> None | t :: _ -> Some t

let overshoot w ~final = Float.max 0. (v_max w -. final)

let is_monotone_rising ?(tol = 0.) w =
  let ok = ref true in
  for i = 0 to Array.length w.vs - 2 do
    if w.vs.(i + 1) < w.vs.(i) -. tol then ok := false
  done;
  !ok

let charge_integral w = Rlc_num.Quadrature.trapezoid_sampled w.ts w.vs

let sampled_diff ?(n = 512) a b ~t0 ~t1 reduce init =
  if t1 <= t0 then invalid_arg "Waveform.diff: empty window";
  if n < 2 then invalid_arg "Waveform.diff: n >= 2";
  let acc = ref init in
  for i = 0 to n - 1 do
    let t = t0 +. ((t1 -. t0) *. float_of_int i /. float_of_int (n - 1)) in
    acc := reduce !acc (value_at a t -. value_at b t)
  done;
  !acc

let rms_diff ?n a b ~t0 ~t1 =
  let count = Option.value n ~default:512 in
  let sum_sq = sampled_diff ?n a b ~t0 ~t1 (fun acc d -> acc +. (d *. d)) 0. in
  Float.sqrt (sum_sq /. float_of_int count)

let max_diff ?n a b ~t0 ~t1 =
  sampled_diff ?n a b ~t0 ~t1 (fun acc d -> Float.max acc (Float.abs d)) 0.

let pp fmt w =
  Format.fprintf fmt "waveform<%d samples, t=[%a, %a], v=[%g, %g]>" (length w)
    Rlc_num.Units.pp_time (t_start w) Rlc_num.Units.pp_time (t_end w) (v_min w) (v_max w)

let pp_series ?(max_rows = max_int) ~unit_time ~unit_v fmt w =
  let n = length w in
  let stride = Int.max 1 ((n + max_rows - 1) / max_rows) in
  let i = ref 0 in
  while !i < n do
    Format.fprintf fmt "%12.4f %12.5f@\n" (w.ts.(!i) /. unit_time) (w.vs.(!i) /. unit_v);
    i := !i + stride
  done;
  if (n - 1) mod stride <> 0 then
    Format.fprintf fmt "%12.4f %12.5f@\n" (w.ts.(n - 1) /. unit_time) (w.vs.(n - 1) /. unit_v)
