(** Sampled voltage waveforms.

    A waveform is a pair of parallel arrays [(ts, vs)] with non-decreasing
    times; values between samples are linearly interpolated.  Reference
    (transient-simulated) and modelled (two-ramp) waveforms both flow through
    this type so delay/slew are measured by the same code on both sides. *)

type t

val create : ts:float array -> vs:float array -> t
(** Validates equal lengths (>= 2) and non-decreasing times. *)

val of_fun : t0:float -> t1:float -> n:int -> (float -> float) -> t
(** Sample a function at [n] uniformly spaced points ([n >= 2]). *)

val length : t -> int
val times : t -> float array
val values : t -> float array
val t_start : t -> float
val t_end : t -> float

val value_at : t -> float -> float
(** Linear interpolation; clamps to the first/last sample outside the
    domain. *)

val v_min : t -> float
val v_max : t -> float
val v_final : t -> float

val map_values : (float -> float) -> t -> t
val shift_time : float -> t -> t
val clip : t -> t_lo:float -> t_hi:float -> t
(** Restrict to the samples inside [\[t_lo, t_hi\]], adding interpolated
    boundary samples. *)

val resample : t -> n:int -> t

type direction = Rising | Falling

val crossings : t -> level:float -> direction:direction -> float list
(** All interpolated times where the waveform crosses [level] in the given
    direction, in time order. *)

val first_crossing : t -> level:float -> direction:direction -> float option
val last_crossing : t -> level:float -> direction:direction -> float option

val overshoot : t -> final:float -> float
(** [max 0 (v_max - final)]. *)

val is_monotone_rising : ?tol:float -> t -> bool

val charge_integral : t -> float
(** Trapezoidal integral of the samples over time (used to integrate
    currents). *)

val rms_diff : ?n:int -> t -> t -> t0:float -> t1:float -> float
(** Root-mean-square difference of two waveforms over [\[t0, t1\]], sampled
    at [n] (default 512) uniform points — the figure-fidelity metric in
    EXPERIMENTS.md. *)

val max_diff : ?n:int -> t -> t -> t0:float -> t1:float -> float

val pp : Format.formatter -> t -> unit
(** Compact summary (sample count, span, range) for logs and test output. *)

val pp_series : ?max_rows:int -> unit_time:float -> unit_v:float ->
  Format.formatter -> t -> unit
(** Two-column (time, value) dump scaled by the given units, e.g.
    [unit_time = 1e-12] prints picoseconds.  Used by the figure benches. *)
