(** Timing measurements with pinned conventions.

    The paper reports "delay" and "slew" without pinning thresholds; this
    module fixes the conventions used throughout the repo (documented in
    DESIGN.md §4) so model and reference are always measured identically:

    - delay: 50 % of the input transition to 50 % of the output transition;
    - slew: t(90 %) - t(10 %) of the output transition;
    - auxiliary thresholds (20/80, 50/90) are exposed for the driver
      on-resistance fit and for table generation. *)

type edge = Waveform.direction = Rising | Falling

val t_frac : Waveform.t -> vdd:float -> edge:edge -> frac:float -> float option
(** First time the waveform crosses [frac * vdd] in the direction matching
    [edge] (for [Falling], the crossing of [(1 - frac)] of the swing, i.e.
    [frac] of the transition's progress). *)

val t_frac_exn : Waveform.t -> vdd:float -> edge:edge -> frac:float -> float

val slew : Waveform.t -> vdd:float -> edge:edge -> lo:float -> hi:float -> float option
(** [slew w ~vdd ~edge ~lo ~hi] = t(hi) - t(lo) in transition progress. *)

val slew_10_90 : Waveform.t -> vdd:float -> edge:edge -> float option
val slew_20_80 : Waveform.t -> vdd:float -> edge:edge -> float option

val full_swing_of_slew : lo:float -> hi:float -> float -> float
(** Extrapolate a measured partial slew to the equivalent full-swing ramp
    time: [slew / (hi - lo)].  E.g. a 20-80 slew extrapolates by 1/0.6. *)

val delay_50 : input:Waveform.t -> output:Waveform.t -> vdd:float ->
  input_edge:edge -> output_edge:edge -> float option
(** 50 % input crossing to first 50 % output crossing. *)

val rel_error : actual:float -> model:float -> float
(** [(model - actual) / actual]; sign convention matches the paper's Table 1
    (positive = model overestimates). *)

val pct_error : actual:float -> model:float -> float
