lib/waveform/measure.ml: Printf Waveform
