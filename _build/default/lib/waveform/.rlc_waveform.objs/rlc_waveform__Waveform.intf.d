lib/waveform/waveform.mli: Format
