lib/waveform/pwl.ml: Array Float Format List Rlc_num Waveform
