lib/waveform/measure.mli: Waveform
