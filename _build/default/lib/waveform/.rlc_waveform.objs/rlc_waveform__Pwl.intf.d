lib/waveform/pwl.mli: Format Waveform
