lib/waveform/waveform.ml: Array Float Format Int List Option Rlc_num
