lib/parasitics/extract.mli: Format Rlc_tline
