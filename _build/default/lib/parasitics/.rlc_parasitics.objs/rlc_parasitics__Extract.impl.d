lib/parasitics/extract.ml: Float Format List Rlc_tline
