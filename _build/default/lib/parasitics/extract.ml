type geometry = { length : float; width : float }
type parasitics = { r_total : float; l_total : float; c_total : float }

let geometry ~length_mm ~width_um =
  if length_mm <= 0. || width_um <= 0. then invalid_arg "Extract.geometry: must be positive";
  { length = length_mm *. 1e-3; width = width_um *. 1e-6 }

let cal ~len_mm ~w_um ~r ~l_nh ~c_pf =
  (geometry ~length_mm:len_mm ~width_um:w_um, { r_total = r; l_total = l_nh *. 1e-9; c_total = c_pf *. 1e-12 })

let calibration_points =
  [
    (* Table 1 rows. *)
    cal ~len_mm:3. ~w_um:0.8 ~r:81.8 ~l_nh:3.3 ~c_pf:0.52;
    cal ~len_mm:3. ~w_um:1.2 ~r:56.3 ~l_nh:3.2 ~c_pf:0.597;
    cal ~len_mm:3. ~w_um:1.6 ~r:43.5 ~l_nh:3.1 ~c_pf:0.66;
    cal ~len_mm:4. ~w_um:0.8 ~r:108.9 ~l_nh:4.42 ~c_pf:0.704;
    cal ~len_mm:4. ~w_um:1.2 ~r:75. ~l_nh:4.2 ~c_pf:0.8;
    cal ~len_mm:4. ~w_um:1.6 ~r:58. ~l_nh:4.13 ~c_pf:0.884;
    cal ~len_mm:5. ~w_um:1.2 ~r:93.7 ~l_nh:5.3 ~c_pf:1.0;
    (* Figure 1 / Figure 5 right. *)
    cal ~len_mm:5. ~w_um:1.6 ~r:72.44 ~l_nh:5.14 ~c_pf:1.10;
    cal ~len_mm:5. ~w_um:2.0 ~r:59.7 ~l_nh:5.0 ~c_pf:1.22;
    cal ~len_mm:5. ~w_um:2.5 ~r:49.5 ~l_nh:4.8 ~c_pf:1.31;
    cal ~len_mm:6. ~w_um:1.2 ~r:112.4 ~l_nh:6.3 ~c_pf:1.19;
    cal ~len_mm:6. ~w_um:1.6 ~r:86.9 ~l_nh:6.2 ~c_pf:1.33;
    cal ~len_mm:6. ~w_um:2.0 ~r:71.6 ~l_nh:6.0 ~c_pf:1.46;
    cal ~len_mm:6. ~w_um:2.5 ~r:59.3 ~l_nh:5.8 ~c_pf:1.58;
    cal ~len_mm:6. ~w_um:3.0 ~r:51.2 ~l_nh:5.6 ~c_pf:1.80;
    (* Figure 3: the 7 mm single-Ceff failure case. *)
    cal ~len_mm:7. ~w_um:1.6 ~r:101.3 ~l_nh:7.1 ~c_pf:1.54;
  ]

let lookup_calibrated g =
  let close a b = Float.abs (a -. b) <= 0.01 *. b in
  List.find_map
    (fun (cg, p) -> if close g.length cg.length && close g.width cg.width then Some p else None)
    calibration_points

(* Fit coefficients (see DESIGN.md §2): derived from the calibration table.
   - sheet resistance grows slightly with width (thickness/proximity
     correction in the authors' extraction): Rs(w) = 0.0204 + 0.00173 w[um]
     Ohm/sq;
   - capacitance: area + fringe, C/len = 0.128 + 0.0573 w[um] pF/mm;
   - loop inductance: L/len = 1.072 - 0.1264 ln w[um] nH/mm. *)
let fitted g =
  let w_um = g.width /. 1e-6 and len_mm = g.length /. 1e-3 in
  let rs = 0.0204 +. (0.00173 *. w_um) in
  let r_total = rs *. (g.length /. g.width) in
  let c_per_mm_pf = 0.128 +. (0.0573 *. w_um) in
  let c_total = c_per_mm_pf *. len_mm *. 1e-12 in
  let l_per_mm_nh = 1.072 -. (0.1264 *. Float.log w_um) in
  let l_total = l_per_mm_nh *. len_mm *. 1e-9 in
  { r_total; l_total; c_total }

let extract g = match lookup_calibrated g with Some p -> p | None -> fitted g

let line_of_parasitics g p =
  Rlc_tline.Line.of_totals ~r:p.r_total ~l:p.l_total ~c:p.c_total ~length:g.length

let line_of g = line_of_parasitics g (extract g)

let pp_parasitics fmt p =
  Format.fprintf fmt "R=%.4g Ohm, L=%.4g nH, C=%.4g pF" p.r_total (p.l_total /. 1e-9)
    (p.c_total /. 1e-12)
