(** Wire parasitics: the paper's 3-D field-solver substitute.

    The paper extracted line R/L/C with an industry field solver and prints
    the totals for every experiment it reports.  This module carries
    (a) that exact calibration table, so the paper's named experiments run on
    the paper's own parasitics, and (b) per-unit-length formulas fitted to
    the table (sheet resistance with a width-dependent correction, area +
    fringe capacitance, logarithmic width dependence for loop inductance)
    for arbitrary sweep geometries.  The fit reproduces every table entry to
    within a few percent (asserted by the test suite). *)

type geometry = {
  length : float;  (** metres *)
  width : float;  (** metres *)
}

type parasitics = {
  r_total : float;  (** Ohm *)
  l_total : float;  (** H *)
  c_total : float;  (** F *)
}

val geometry : length_mm:float -> width_um:float -> geometry

val calibration_points : (geometry * parasitics) list
(** The 16 (length, width) -> (R, L, C) extractions quoted in the paper
    (Table 1, Figures 1, 3, 5, 6). *)

val lookup_calibrated : geometry -> parasitics option
(** Exact-match (1 % tolerance on both dimensions) lookup into the paper's
    table. *)

val fitted : geometry -> parasitics
(** Formula-based extraction for arbitrary geometry (0.5–4 µm width,
    0.5–10 mm length intended range). *)

val extract : geometry -> parasitics
(** Calibrated value when the paper quotes this geometry, fitted otherwise. *)

val line_of : geometry -> Rlc_tline.Line.t
(** Convenience: {!extract} packaged as a transmission line. *)

val line_of_parasitics : geometry -> parasitics -> Rlc_tline.Line.t

val pp_parasitics : Format.formatter -> parasitics -> unit
