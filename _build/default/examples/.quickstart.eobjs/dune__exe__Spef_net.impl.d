examples/spef_net.ml: Format List Option Rlc_ceff Rlc_devices Rlc_liberty Rlc_moments Rlc_num Rlc_spef Rlc_waveform
