examples/crosstalk_bus.mli:
