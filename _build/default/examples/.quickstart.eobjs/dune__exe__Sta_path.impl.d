examples/sta_path.ml: Format List Rlc_ceff Rlc_devices Rlc_num Rlc_parasitics Rlc_sta Sta
