examples/quickstart.ml: Driver_model Evaluate Format Rlc_ceff Rlc_devices Rlc_liberty Rlc_num Rlc_parasitics Rlc_tline Rlc_waveform Screen
