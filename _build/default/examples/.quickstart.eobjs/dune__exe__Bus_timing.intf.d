examples/bus_timing.mli:
