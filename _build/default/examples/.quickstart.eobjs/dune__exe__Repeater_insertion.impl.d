examples/repeater_insertion.ml: Format List Printexc Rlc_ceff Rlc_num Rlc_parasitics Rlc_sta Sta
