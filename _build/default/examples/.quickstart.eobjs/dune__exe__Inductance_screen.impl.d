examples/inductance_screen.ml: Array Driver_model Float Format List Rlc_ceff Rlc_devices Rlc_liberty Rlc_num Rlc_parasitics Rlc_waveform Screen
