examples/quickstart.mli:
