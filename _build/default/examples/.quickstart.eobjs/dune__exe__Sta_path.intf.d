examples/sta_path.mli:
