examples/repeater_insertion.mli:
