examples/spef_net.mli:
