examples/crosstalk_bus.ml: Coupled_ladder Engine Format Inverter Line List Netlist Rlc_circuit Rlc_devices Rlc_tline Rlc_waveform Tech Testbench Waveform
