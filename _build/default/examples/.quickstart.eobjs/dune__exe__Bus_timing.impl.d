examples/bus_timing.ml: Driver_model Format List Reference Rlc_ceff Rlc_devices Rlc_liberty Rlc_num Rlc_parasitics Rlc_waveform Screen
