examples/inductance_screen.mli:
