(* Static timing of a repeatered global route.

   The "library compatible" payoff: a three-stage repeater chain across a
   14 mm global route is timed entirely from NLDM tables + the one-/two-ramp
   driver model + linear far-end replay — no transistor simulation in the
   timing loop.  The result is then validated stage 0 against the
   transistor-level reference.

   Run with:  dune exec examples/sta_path.exe *)
open Rlc_sta

let line len_mm width_um =
  Rlc_parasitics.Extract.line_of (Rlc_parasitics.Extract.geometry ~length_mm:len_mm ~width_um)

let () =
  let path =
    [
      { Sta.size = 75.; line = line 5. 1.6 };
      { Sta.size = 100.; line = line 6. 2.0 };
      { Sta.size = 75.; line = line 3. 1.2 };
    ]
  in
  let result = Sta.analyze ~input_slew:(Rlc_num.Units.ps 80.) ~sink_cl:25e-15 path in
  Format.printf "%a@." Sta.pp_path result;
  (* Which stages needed the two-ramp treatment? *)
  List.iteri
    (fun i s ->
      Format.printf "stage %d screen: %a@." i Rlc_ceff.Screen.pp
        s.Sta.model.Rlc_ceff.Driver_model.screen)
    result.Sta.stages;
  (* Sanity: transistor-level reference for stage 0 (same load = stage 1's
     input cap). *)
  let cl1 =
    Rlc_devices.Inverter.input_cap (Rlc_devices.Inverter.make Rlc_devices.Tech.c018 ~size:100.)
  in
  let ref_run =
    Rlc_ceff.Reference.simulate ~dt:0.5e-12 ~tech:Rlc_devices.Tech.c018 ~size:75.
      ~input_slew:(Rlc_num.Units.ps 80.) ~line:(line 5. 1.6) ~cl:cl1 ()
  in
  let s0 = List.hd result.Sta.stages in
  Format.printf "@.stage 0 far-end check: STA %.1f ps vs transistor-level %.1f ps@."
    (Rlc_num.Units.in_ps s0.Sta.stage_delay)
    (Rlc_num.Units.in_ps (Rlc_ceff.Reference.far_delay ref_run));
  Format.printf "quick estimate (no replay): %.1f ps@."
    (Rlc_num.Units.in_ps
       (Sta.estimate_far_delay s0.Sta.model ~line:(line 5. 1.6) ~cl:cl1))
