(* Inductive vs capacitive crosstalk on a coupled global bus.

   The paper's introduction motivates inductance as a signal-integrity
   concern; this example quantifies it.  Two neighbouring 5 mm bus bits are
   driven by real inverters: the aggressor switches, the victim's driver
   holds it quiet.  We sweep the coupling mix and report the victim's far-end
   noise — positive when the capacitive term (Cc/C) dominates and negative
   (with the classic forward-crosstalk dip) when the mutual-inductance term
   (M/L) does.

   Run with:  dune exec examples/crosstalk_bus.exe *)
open Rlc_circuit
open Rlc_tline
open Rlc_devices
open Rlc_waveform

let tech = Tech.c018
let line = Line.of_totals ~r:72.44 ~l:5.14e-9 ~c:1.10e-12 ~length:5e-3

let run ~k ~cc_total ~size =
  let nl = Netlist.create () in
  let vdd_node = Netlist.node nl "vdd" in
  Netlist.force_voltage nl vdd_node (fun _ -> tech.Tech.vdd);
  (* Aggressor input falls (output rises); victim input held at VDD so its
     NMOS actively holds the victim line low. *)
  let in_a = Netlist.node nl "in_a" and in_v = Netlist.node nl "in_v" in
  Netlist.force_voltage nl in_a (Testbench.falling_input tech ~t0:20e-12 ~slew:100e-12);
  Netlist.force_voltage nl in_v (fun _ -> tech.Tech.vdd);
  let out_a = Netlist.node nl "out_a" and out_v = Netlist.node nl "out_v" in
  let inv = Inverter.make tech ~size in
  Inverter.add nl inv ~vdd_node ~input:in_a ~output:out_a;
  Inverter.add nl inv ~vdd_node ~input:in_v ~output:out_v;
  let built =
    Coupled_ladder.build ~n_segments:100 nl line ~k ~cc_total ~near_a:out_a ~near_b:out_v
  in
  Netlist.capacitor nl built.Coupled_ladder.far_a Netlist.ground 20e-15;
  Netlist.capacitor nl built.Coupled_ladder.far_b Netlist.ground 20e-15;
  let r = Engine.transient ~dt:0.5e-12 ~t_stop:1.5e-9 nl in
  let victim = Engine.voltage r built.Coupled_ladder.far_b in
  (Waveform.v_max victim, Waveform.v_min victim)

let () =
  Format.printf "coupled 5 mm bus bits, 75X drivers, victim held low@.@.";
  Format.printf "%28s %14s %14s@." "coupling mix" "peak (mV)" "dip (mV)";
  List.iter
    (fun (label, k, cc) ->
      let peak, dip = run ~k ~cc_total:cc ~size:75. in
      Format.printf "%28s %14.0f %14.0f@." label (peak /. 1e-3) (dip /. 1e-3))
    [
      ("capacitive only (Cc=300fF)", 0.0, 0.3e-12);
      ("inductive only (k=0.5)", 0.5, 0.);
      ("mixed (k=0.5, Cc=300fF)", 0.5, 0.3e-12);
      ("light (k=0.2, Cc=100fF)", 0.2, 0.1e-12);
    ];
  Format.printf
    "@.Inductive coupling flips the victim's far-end noise negative (forward@\n\
     crosstalk ~ Cc/C - M/L); RC-only noise analysis would miss both the@\n\
     polarity and part of the magnitude - the same physics that breaks@\n\
     single-ramp driver models on these wires.@."
