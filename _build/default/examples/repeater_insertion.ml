(* Repeater insertion on a 12 mm global route.

   The classic use of a driver-output model inside an optimization loop:
   evaluate candidate (repeater count, repeater size) configurations with
   table-driven timing — no transistor simulation per candidate — and pick
   the fastest.  Inductance makes this interesting: fewer, stronger
   repeaters push each segment into the transmission-line regime where the
   two-ramp model (not a single Ceff) is what keeps the timing honest.

   Run with:  dune exec examples/repeater_insertion.exe *)
open Rlc_sta

let route_mm = 12.
let width_um = 1.6
let sink_cl = 25e-15
let input_slew = Rlc_num.Units.ps 100.

let segment n_stages =
  Rlc_parasitics.Extract.line_of
    (Rlc_parasitics.Extract.geometry ~length_mm:(route_mm /. float_of_int n_stages) ~width_um)

let () =
  Format.printf "route: %.0f mm x %.1f um, sink load %.0f fF@.@." route_mm width_um
    (Rlc_num.Units.in_ff sink_cl);
  Format.printf "%8s %8s %12s %14s %s@." "stages" "size" "delay (ps)" "slew out (ps)" "regime";
  let best = ref None in
  List.iter
    (fun n_stages ->
      List.iter
        (fun size ->
          let stages = List.init n_stages (fun _ -> { Sta.size; line = segment n_stages }) in
          match Sta.analyze ~dt:1e-12 ~input_slew ~sink_cl stages with
          | result ->
              let last = List.nth result.Sta.stages (n_stages - 1) in
              let inductive_stages =
                List.length
                  (List.filter
                     (fun s ->
                       s.Sta.model.Rlc_ceff.Driver_model.screen.Rlc_ceff.Screen.significant)
                     result.Sta.stages)
              in
              Format.printf "%8d %7.0fX %12.1f %14.1f %d/%d inductive@." n_stages size
                (Rlc_num.Units.in_ps result.Sta.total_delay)
                (Rlc_num.Units.in_ps last.Sta.far_slew)
                inductive_stages n_stages;
              (match !best with
              | Some (d, _, _) when d <= result.Sta.total_delay -> ()
              | _ -> best := Some (result.Sta.total_delay, n_stages, size))
          | exception e ->
              Format.printf "%8d %7.0fX %12s (%s)@." n_stages size "-" (Printexc.to_string e))
        [ 50.; 75.; 100.; 125. ])
    [ 1; 2; 3; 4 ];
  match !best with
  | Some (delay, n, size) ->
      Format.printf "@.best: %d x %.0fX repeaters -> %.1f ps end to end@." n size
        (Rlc_num.Units.in_ps delay)
  | None -> Format.printf "@.no feasible configuration found@."
