(* Command-line front end: analyze a single net, screen inductance, emit a
   characterized Liberty library, or run the Figure-7 style sweep. *)
open Cmdliner
open Rlc_ceff

let ps = Rlc_num.Units.in_ps

(* ------------------------------------------------------- shared args *)

let length_arg =
  Arg.(required & opt (some float) None & info [ "length" ] ~docv:"MM" ~doc:"Line length in mm.")

let width_arg =
  Arg.(required & opt (some float) None & info [ "width" ] ~docv:"UM" ~doc:"Line width in um.")

let size_arg =
  Arg.(
    required
    & opt (some float) None
    & info [ "size" ] ~docv:"X" ~doc:"Driver size (X multiplier, e.g. 75).")

let slew_arg =
  Arg.(
    value & opt float 100. & info [ "slew" ] ~docv:"PS" ~doc:"Input transition time in ps.")

let cl_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "cl" ] ~docv:"FF" ~doc:"Far-end load in fF (default: a 10X receiver gate).")

let dt_arg =
  Arg.(value & opt float 0.5 & info [ "dt" ] ~docv:"PS" ~doc:"Simulation timestep in ps.")

(* --jobs N | --jobs auto.  [None] means "auto": the machine's recommended
   domain count.  Explicit requests are still clamped to that count by the
   library layers (oversubscription only slows things down). *)
let jobs_conv =
  let parse s =
    if String.lowercase_ascii s = "auto" then Ok None
    else
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok (Some n)
      | _ -> Error (`Msg (Printf.sprintf "expected a positive integer or 'auto', got %S" s))
  in
  let print fmt = function
    | None -> Format.pp_print_string fmt "auto"
    | Some n -> Format.pp_print_int fmt n
  in
  Arg.conv (parse, print)

let jobs_arg =
  Arg.(
    value
    & opt jobs_conv None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains, or 'auto' (the default: the machine's recommended domain count).  \
           Requests beyond the core count are clamped.  Results are identical for every N.")

(* Adaptive-stepping knobs, shared by sweep and flow. *)
let adaptive_flag =
  Arg.(
    value & flag
    & info [ "adaptive" ]
        ~doc:
          "Use LTE-controlled adaptive time stepping for the transient simulations ($(b,--dt) \
           is then unused by the engine).  Steps grow through flat regions and shrink near \
           activity; waveform breakpoints are landed on exactly.")

let dt_min_arg =
  Arg.(
    value & opt float 0.25
    & info [ "dt-min" ] ~docv:"PS" ~doc:"Adaptive: smallest (and initial) step, in ps.")

let dt_max_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "dt-max" ] ~docv:"PS" ~doc:"Adaptive: largest step, in ps (default 256 x dt-min).")

let ltol_arg =
  Arg.(
    value
    & opt float (Rlc_circuit.Engine.default_adaptive ()).Rlc_circuit.Engine.ltol
    & info [ "ltol" ] ~docv:"V"
        ~doc:
          "Adaptive: per-step local truncation error tolerance, in volts. The default is \
           timing-grade; tighten (e.g. 1e-3) for waveform-tracking work.")

let adaptive_of ~adaptive ~dt_min ~dt_max ~ltol =
  if not adaptive then None
  else
    Some
      (Rlc_circuit.Engine.default_adaptive ~dt_min:(Rlc_num.Units.ps dt_min)
         ?dt_max:(Option.map Rlc_num.Units.ps dt_max)
         ~ltol ())

let cell_or_die tech ~size =
  match Rlc_liberty.Characterize.cell_res tech ~size with
  | Ok c -> c
  | Error e ->
      Format.eprintf "%s@." (Rlc_service.Error.message e);
      exit 2

let make_case ~label length width size slew cl =
  Evaluate.case ~label ~length_mm:length ~width_um:width ~size ~input_slew_ps:slew
    ?cl:(Option.map Rlc_num.Units.ff cl) ()

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

(* -------------------------------------------------- instrumentation args *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON of instrumentation spans (open in chrome://tracing \
           or Perfetto).  Telemetry is a sidecar file; report payloads are unaffected.")

let metrics_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:"Write an instrumentation metrics summary (counters, histograms, span totals).")

(* The sink is enabled only when an exporter will consume it, so default
   runs keep the zero-overhead disabled path. *)
let obs_of ~trace ~metrics_json =
  if trace <> None || metrics_json <> None then Rlc_obs.Obs.create () else Rlc_obs.Obs.null

let export_obs obs ~trace ~metrics_json =
  if Rlc_obs.Obs.enabled obs then begin
    let m = Rlc_obs.Obs.snapshot obs in
    Option.iter (fun path -> write_file path (Rlc_obs.Export.chrome_trace m)) trace;
    Option.iter (fun path -> write_file path (Rlc_obs.Export.metrics_json m)) metrics_json
  end

(* ------------------------------------------------------------ analyze *)

let analyze_cmd =
  let run length width size slew cl dt compare dump =
    let case = make_case ~label:"cli" length width size slew cl in
    let line = case.Evaluate.line in
    Format.printf "net: %a@." Rlc_tline.Line.pp line;
    if compare then begin
      let cmp = Evaluate.run ~dt:(Rlc_num.Units.ps dt) case in
      Format.printf "%a@." Driver_model.pp cmp.Evaluate.auto_model;
      Format.printf "%a@." Screen.pp cmp.Evaluate.auto_model.Driver_model.screen;
      Format.printf "%a@." Evaluate.pp_comparison cmp;
      if dump then begin
        Format.printf "@.# model output waveform (ps, V)@.";
        Format.printf "%a@."
          (Rlc_waveform.Waveform.pp_series ~max_rows:60 ~unit_time:1e-12 ~unit_v:1.)
          (Driver_model.output_waveform cmp.Evaluate.auto_model)
      end
    end
    else begin
      let cell = cell_or_die case.Evaluate.tech ~size in
      let m =
        Driver_model.model ~cell ~edge:Rlc_waveform.Measure.Rising
          ~input_slew:case.Evaluate.input_slew ~line ~cl:case.Evaluate.cl ()
      in
      Format.printf "%a@." Driver_model.pp m;
      Format.printf "%a@." Screen.pp m.Driver_model.screen;
      Format.printf "model delay %.2f ps, slew(10-90) %.2f ps@." (ps (Driver_model.model_delay m))
        (ps (Driver_model.model_slew_10_90 m))
    end;
    0
  in
  let compare_arg =
    Arg.(value & flag & info [ "compare" ] ~doc:"Also run the transistor-level reference.")
  in
  let dump_arg = Arg.(value & flag & info [ "dump-waveforms" ] ~doc:"Print waveform samples.") in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Model one driver + RLC net (optionally vs reference simulation).")
    Term.(
      const run $ length_arg $ width_arg $ size_arg $ slew_arg $ cl_arg $ dt_arg $ compare_arg
      $ dump_arg)

(* ------------------------------------------------------------- screen *)

let screen_cmd =
  let run length width size slew cl =
    let case = make_case ~label:"cli" length width size slew cl in
    let cell = cell_or_die case.Evaluate.tech ~size in
    let m =
      Driver_model.model ~cell ~edge:Rlc_waveform.Measure.Rising
        ~input_slew:case.Evaluate.input_slew ~line:case.Evaluate.line ~cl:case.Evaluate.cl ()
    in
    Format.printf "%a@." Screen.pp m.Driver_model.screen;
    if m.Driver_model.screen.Screen.significant then 0 else 1
  in
  Cmd.v
    (Cmd.info "screen"
       ~doc:
         "Evaluate the Eq. 9 inductance-significance criteria (exit 0 when inductance is \
          significant).")
    Term.(const run $ length_arg $ width_arg $ size_arg $ slew_arg $ cl_arg)

(* ------------------------------------------------------- characterize *)

let characterize_cmd =
  let run sizes out =
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest -> (
          match Rlc_liberty.Characterize.cell_res Rlc_devices.Tech.c018 ~size:s with
          | Ok c -> build (c :: acc) rest
          | Error e -> Error e)
    in
    match build [] sizes with
    | Error e ->
        Format.eprintf "%s@." (Rlc_service.Error.message e);
        2
    | Ok cells ->
        Rlc_liberty.Liberty_io.save ~path:out ~name:"rlc_timing_c018" cells;
        Format.printf "wrote %d cells to %s@." (List.length cells) out;
        0
  in
  let sizes_arg =
    Arg.(
      value
      & opt (list float) [ 25.; 50.; 75.; 100.; 125. ]
      & info [ "sizes" ] ~docv:"X,X,..." ~doc:"Driver sizes to characterize.")
  in
  let out_arg =
    Arg.(value & opt string "rlc_timing.lib" & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "characterize" ~doc:"Characterize inverters and write a Liberty-subset library.")
    Term.(const run $ sizes_arg $ out_arg)

(* -------------------------------------------------------------- sweep *)

let sweep_cmd =
  let run dt limit jobs adaptive dt_min dt_max ltol trace metrics_json =
    let cases = Experiments.sweep_cases () in
    let cases =
      match limit with
      | Some n -> List.filteri (fun i _ -> i < n) cases
      | None -> cases
    in
    let requested = match jobs with Some j -> j | None -> Rlc_parallel.Pool.default_jobs () in
    let jobs = Experiments.effective_jobs requested in
    let adaptive = adaptive_of ~adaptive ~dt_min ~dt_max ~ltol in
    let obs = obs_of ~trace ~metrics_json in
    (* The reference-pass total (inductive survivor count) is only known
       after screening, so the meter learns it from the first callback. *)
    let meter = Rlc_obs.Progress.create ~label:"  sweep" ~total:0 () in
    let stats =
      Experiments.run_sweep ~obs ~dt:(Rlc_num.Units.ps dt) ?adaptive ~jobs
        ~progress:(fun k n ->
          Rlc_obs.Progress.set_total meter n;
          Rlc_obs.Progress.report meter k)
        cases
    in
    Rlc_obs.Progress.finish meter;
    export_obs obs ~trace ~metrics_json;
    (* Clamp note stays in the human summary; sweep has no machine payload. *)
    if jobs < requested then
      Format.printf "workers: %d domains (requested %d, clamped to core count)@." jobs requested;
    Format.printf "swept %d cases; %d inductive@." stats.Experiments.n_swept
      stats.Experiments.n_inductive;
    let show tag (e : Experiments.error_stats) =
      Format.printf
        "%s: avg |delay err| %.1f%%, avg |slew err| %.1f%%; delay <5%%: %.0f%% <10%%: %.0f%%; \
         slew <5%%: %.0f%% <10%%: %.0f%%@."
        tag e.Experiments.avg_abs_delay_err e.Experiments.avg_abs_slew_err
        e.Experiments.delay_within_5 e.Experiments.delay_within_10 e.Experiments.slew_within_5
        e.Experiments.slew_within_10
    in
    show "Eq.8 stretch" stats.Experiments.stretch;
    show "flat step   " stats.Experiments.flat;
    0
  in
  let limit_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"Only examine the first N grid cases.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Run the Figure-7 style sweep and print error statistics.")
    Term.(
      const run $ dt_arg $ limit_arg $ jobs_arg $ adaptive_flag $ dt_min_arg $ dt_max_arg
      $ ltol_arg $ trace_arg $ metrics_json_arg)

(* --------------------------------------------------------------- flow *)

let flow_cmd =
  let run spef_file spec_file jobs json csv size slew no_cache dt adaptive dt_min dt_max ltol
      required verbose trace metrics_json xtalk xtalk_threshold xtalk_budget xtalk_alignments =
    if verbose then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Info)
    end;
    let obs = obs_of ~trace ~metrics_json in
    let adaptive = adaptive_of ~adaptive ~dt_min ~dt_max ~ltol in
    (* The one-shot flow rides the same Session as the daemon, so the
       --json payload is byte-identical to a served "flow" request.
       Exit codes: 2 for errors (parse errors print file:line: message),
       1 for a timing violation, 0 otherwise. *)
    let config =
      {
        Rlc_service.Session.Config.default with
        Rlc_service.Session.Config.jobs =
          Experiments.effective_jobs
            (match jobs with Some j -> j | None -> Rlc_parallel.Pool.default_jobs ());
        dt = Rlc_num.Units.ps dt;
        use_cache = not no_cache;
        default_size = size;
        default_slew = Rlc_num.Units.ps slew;
        obs;
      }
    in
    Rlc_service.Session.with_session ~config (fun session ->
        let ingested =
          Rlc_service.Session.ingest session ~spef:(read_file spef_file) ~spef_name:spef_file
            ?spec:(Option.map read_file spec_file)
            ?spec_name:spec_file ()
        in
        match ingested with
        | Error e ->
            Format.eprintf "%s@." (Rlc_service.Error.message e);
            2
        | Ok design -> (
            (* Level-grained progress: a plain line per level on a non-TTY
               stderr (every:1), an in-place redraw on a terminal. *)
            let progress =
              if verbose then
                Some
                  (Rlc_obs.Progress.create ~every:1 ~label:"  flow nets"
                     ~total:(Array.length design.Rlc_flow.Design.nets)
                     ())
              else None
            in
            let required = Option.map Rlc_num.Units.ps required in
            let xtalk_req =
              if not xtalk then None
              else
                Some
                  {
                    Rlc_service.Session.threshold = xtalk_threshold;
                    budget = xtalk_budget;
                    alignments = xtalk_alignments;
                  }
            in
            let request =
              {
                Rlc_service.Session.Request.default with
                Rlc_service.Session.Request.required;
                adaptive;
                progress;
                xtalk = xtalk_req;
              }
            in
            match Rlc_service.Session.flow session request design with
            | Error e ->
                Option.iter Rlc_obs.Progress.finish progress;
                Format.eprintf "%s@." (Rlc_service.Error.message e);
                2
            | Ok { Rlc_service.Session.result; xtalk = xtalk_result; report } ->
                Option.iter Rlc_obs.Progress.finish progress;
                export_obs obs ~trace ~metrics_json;
                Format.printf "%a" (fun fmt -> Rlc_flow.Report.summary ?required fmt) result;
                Option.iter
                  (fun x -> Format.printf "%a" (Rlc_xtalk.Xtalk.summary design) x)
                  xtalk_result;
                Option.iter (fun path -> write_file path report) json;
                Option.iter
                  (fun path -> write_file path (Rlc_flow.Report.csv_string result))
                  csv;
                (* Gate CI on signoff: nonzero exit when the worst arrival
                   violates the required time, or when a simulated victim's
                   noise peak breaks the budget — a noise violation is a
                   failure exactly like negative slack. *)
                let timing_violated =
                  match required with
                  | None -> false
                  | Some req -> (
                      match List.rev (Rlc_flow.Flow.critical_path result) with
                      | last :: _ -> req -. last.Rlc_flow.Flow.arrival < 0.
                      | [] -> false)
                in
                let noise_violated =
                  match xtalk_result with
                  | Some x -> x.Rlc_xtalk.Xtalk.stats.Rlc_xtalk.Xtalk.n_violations > 0
                  | None -> false
                in
                if timing_violated then
                  Format.eprintf "timing violated: worst slack is negative@.";
                if noise_violated then
                  Format.eprintf "noise violated: a victim peak breaks the budget@.";
                if timing_violated || noise_violated then 1 else 0))
  in
  let spef_arg =
    Arg.(
      required & opt (some file) None & info [ "spef" ] ~docv:"SPEF" ~doc:"Design SPEF file.")
  in
  let spec_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:
            "Connectivity spec (driver sizes, primary input slews, net-to-net edges, extra \
             loads).  Default: every net is a primary input driven at --size/--slew.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Write JSON report.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write CSV report.")
  in
  let no_cache_arg =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the Ceff result cache.")
  in
  let required_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "required" ] ~docv:"PS" ~doc:"Required arrival time for slack reporting, in ps.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log per-phase progress.")
  in
  let default_size_arg =
    Arg.(
      value
      & opt float 75.
      & info [ "size" ] ~docv:"X" ~doc:"Default driver size when no spec is given.")
  in
  let xtalk_flag =
    Arg.(
      value & flag
      & info [ "xtalk" ]
          ~doc:
            "After the isolated flow, run the coupled-net crosstalk analysis: screen every \
             victim/aggressor pair with the closed-form noise estimate, simulate the survivors \
             as coupled clusters, and report per-victim noise peaks and delay push-out.  A \
             victim whose simulated peak breaks the budget fails the run like negative slack.")
  in
  let xtalk_threshold_arg =
    Arg.(
      value
      & opt float Rlc_service.Session.default_xtalk.Rlc_service.Session.threshold
      & info [ "xtalk-threshold" ] ~docv:"FRAC"
          ~doc:
            "Screen level as a fraction of VDD: pairs whose closed-form estimate stays below \
             it are dismissed without simulation.")
  in
  let xtalk_budget_arg =
    Arg.(
      value
      & opt float Rlc_service.Session.default_xtalk.Rlc_service.Session.budget
      & info [ "xtalk-budget" ] ~docv:"FRAC"
          ~doc:
            "Noise budget as a fraction of VDD: a simulated victim peak at or above it is a \
             violation (nonzero exit).")
  in
  let xtalk_alignments_arg =
    Arg.(
      value
      & opt int Rlc_service.Session.default_xtalk.Rlc_service.Session.alignments
      & info [ "xtalk-alignments" ] ~docv:"N"
          ~doc:
            "Aggressor-alignment grid points swept for the worst delay push-out (1 = aligned \
             starts only; grids nest, so the worst case is monotone in N).")
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:
         "Time a full multi-net design from SPEF: levelized net graph, parallel per-net Ceff \
          solves over a domain pool, slew propagation between levels, JSON/CSV reports.  With \
          $(b,--xtalk), also screen and simulate coupled-net crosstalk.")
    Term.(
      const run $ spef_arg $ spec_arg $ jobs_arg $ json_arg $ csv_arg $ default_size_arg
      $ slew_arg $ no_cache_arg $ dt_arg $ adaptive_flag $ dt_min_arg $ dt_max_arg $ ltol_arg
      $ required_arg $ verbose_arg $ trace_arg $ metrics_json_arg $ xtalk_flag
      $ xtalk_threshold_arg $ xtalk_budget_arg $ xtalk_alignments_arg)

(* ----------------------------------------------------------- optimize *)

let optimize_cmd =
  let run spef_file spec_file required jobs json csv sizes no_repeaters max_stages no_cache dt
      adaptive dt_min dt_max ltol timeout_ms verbose trace metrics_json =
    if verbose then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Info)
    end;
    let obs = obs_of ~trace ~metrics_json in
    let adaptive = adaptive_of ~adaptive ~dt_min ~dt_max ~ltol in
    let deadline =
      if timeout_ms <= 0 then None
      else Some (Rlc_errors.Deadline.start (float_of_int timeout_ms /. 1000.))
    in
    let jobs =
      Experiments.effective_jobs
        (match jobs with Some j -> j | None -> Rlc_parallel.Pool.default_jobs ())
    in
    let cfg =
      {
        Rlc_flow.Flow.Config.default with
        Rlc_flow.Flow.Config.jobs = Some jobs;
        dt = Rlc_num.Units.ps dt;
        adaptive;
        use_cache = not no_cache;
        obs;
        deadline;
      }
    in
    (* Exit codes match flow: 2 for errors (including budget expiry), 1 when
       violations remain after optimization, 0 when the design closes. *)
    let spec_of spef = function
      | None -> Ok (Rlc_flow.Spec.default_of_spef spef)
      | Some f -> Rlc_flow.Spec.parse_res ~file:f (read_file f)
    in
    match Rlc_spef.Spef.parse_res ~file:spef_file (read_file spef_file) with
    | Error e ->
        Format.eprintf "%s@." (Rlc_service.Error.message e);
        2
    | Ok spef -> (
        match spec_of spef spec_file with
        | Error e ->
            Format.eprintf "%s@." (Rlc_service.Error.message e);
            2
        | Ok spec -> (
            let result =
              try
                Rlc_flow.Optimize.run ?sizes ~repeaters:(not no_repeaters) ~max_stages
                  ~required:(Rlc_num.Units.ps required) cfg ~spef ~spec ()
              with Rlc_errors.Deadline.Expired budget ->
                Error (Rlc_errors.Error.Timeout budget)
            in
            match result with
            | Error e ->
                Format.eprintf "%s@." (Rlc_service.Error.message e);
                2
            | Ok o ->
                export_obs obs ~trace ~metrics_json;
                Format.printf "%a" (fun fmt -> Rlc_flow.Report.optimize_summary fmt) o;
                Option.iter
                  (fun path -> write_file path (Rlc_flow.Report.optimize_json_string o))
                  json;
                Option.iter
                  (fun path -> write_file path (Rlc_flow.Report.optimize_csv_string o))
                  csv;
                if o.Rlc_flow.Optimize.stats.Rlc_flow.Optimize.o_violations_after > 0 then begin
                  Format.eprintf "timing violated: %d nets still miss the required time@."
                    o.Rlc_flow.Optimize.stats.Rlc_flow.Optimize.o_violations_after;
                  1
                end
                else 0))
  in
  let spef_arg =
    Arg.(
      required & opt (some file) None & info [ "spef" ] ~docv:"SPEF" ~doc:"Design SPEF file.")
  in
  let spec_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:"Connectivity spec (driver sizes, input slews, net-to-net edges, extra loads).")
  in
  let required_arg =
    Arg.(
      required
      & opt (some float) None
      & info [ "required" ] ~docv:"PS"
          ~doc:"Required arrival time every net must meet, in ps.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the JSON optimization report.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the CSV optimization report.")
  in
  let sizes_arg =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "sizes" ] ~docv:"X,X,..."
          ~doc:
            "Candidate driver sizes for the resize search (default 25–300X ladder); only sizes \
             above a net's current size are tried.")
  in
  let no_repeaters_arg =
    Arg.(
      value & flag
      & info [ "no-repeaters" ]
          ~doc:
            "Disable the repeater-insertion fallback; nets a resize cannot fix are reported \
             unfixable.")
  in
  let max_stages_arg =
    Arg.(
      value & opt int 4
      & info [ "max-stages" ] ~docv:"N"
          ~doc:"Largest repeater chain considered by the insertion fallback.")
  in
  let no_cache_arg =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the shared Ceff result cache.")
  in
  let timeout_arg =
    Arg.(
      value & opt int 0
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget for the whole optimization in milliseconds; the candidate loops \
             poll it and expiry exits 2 with a timeout error.  0 (default) disables it.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log per-level search progress.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:
         "Close timing on a full design: time it, then search every negative-slack net for a \
          driver resize (screen, Ceff-model solve, rare transistor-level escalation) with \
          repeater insertion as the fallback, batched over the domain pool.  The chosen \
          resizes are applied and verified with an incremental retime; reports are \
          byte-identical for every $(b,--jobs) count.")
    Term.(
      const run $ spef_arg $ spec_arg $ required_arg $ jobs_arg $ json_arg $ csv_arg $ sizes_arg
      $ no_repeaters_arg $ max_stages_arg $ no_cache_arg $ dt_arg $ adaptive_flag $ dt_min_arg
      $ dt_max_arg $ ltol_arg $ timeout_arg $ verbose_arg $ trace_arg $ metrics_json_arg)

(* -------------------------------------------------------------- serve *)

let serve_cmd =
  let run socket jobs workers queue backlog timeout_ms max_bytes warm designs verbose trace
      metrics_json slow_ms tick_ms =
    if verbose then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Info)
    end;
    (* The daemon always runs with an enabled sink: the rolling window
       behind [metrics]/[health]/[top] needs the counters and histograms,
       and report payloads are byte-identical either way (CI asserts it).
       Spans, however, accumulate until snapshot — memory proportional to
       requests served — so they are recorded only when a sidecar
       (--trace/--metrics-json, dumped at exit) will consume them; a plain
       daemon's footprint stays constant for its whole lifetime. *)
    let obs = Rlc_obs.Obs.create ~spans:(trace <> None || metrics_json <> None) () in
    let config =
      {
        Rlc_service.Session.Config.default with
        Rlc_service.Session.Config.jobs;
        design_capacity = designs;
        obs;
      }
    in
    Rlc_service.Session.with_session ~config (fun session ->
        match Rlc_service.Session.warm session warm with
        | Error e ->
            Format.eprintf "%s@." (Rlc_service.Error.message e);
            2
        | Ok () ->
            let server =
              Rlc_service.Server.create
                ~timeout_s:(float_of_int timeout_ms /. 1000.)
                ~max_request_bytes:max_bytes ~workers ~queue_capacity:queue ?backlog ?slow_ms
                ~tick_period_s:(float_of_int tick_ms /. 1000.)
                session
            in
            (match socket with
            | None -> Rlc_service.Server.serve_channels server stdin stdout
            | Some path -> Rlc_service.Server.serve_unix server ~path);
            export_obs obs ~trace ~metrics_json;
            0)
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve on a Unix-domain socket at $(docv) instead of the default stdin/stdout pipe \
             mode.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains of the resident solve pool shared by all requests (per-net \
             fan-out inside one flow).  Deadline-based request budgets work at any value.")
  in
  let workers_arg =
    Arg.(
      value
      & opt int Rlc_service.Server.default_workers
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Executor domains draining the admission queue in socket mode — the number of \
             requests served concurrently.  Pipe mode is always serial.")
  in
  let queue_arg =
    Arg.(
      value
      & opt int Rlc_service.Server.default_queue_capacity
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission-queue capacity in socket mode.  When the queue is full, new requests \
             are rejected immediately with the typed timeout error instead of waiting.")
  in
  let backlog_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "backlog" ] ~docv:"N"
          ~doc:"Kernel listen backlog in socket mode; defaults to the admission-queue capacity.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt int (int_of_float (Rlc_service.Server.default_timeout_s *. 1000.))
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-request wall-clock budget in milliseconds (requests may lower it with \
             timeout_ms); 0 disables the timeout.")
  in
  let max_bytes_arg =
    Arg.(
      value
      & opt int Rlc_service.Protocol.default_max_bytes
      & info [ "max-request-bytes" ] ~docv:"N" ~doc:"Reject request lines longer than $(docv).")
  in
  let warm_arg =
    Arg.(
      value & opt (list float) []
      & info [ "warm" ] ~docv:"X,X,..."
          ~doc:"Pre-characterize these driver sizes before serving the first request.")
  in
  let designs_arg =
    Arg.(
      value
      & opt int Rlc_service.Session.Config.default.Rlc_service.Session.Config.design_capacity
      & info [ "designs" ] ~docv:"N"
          ~doc:
            "Resident incrementally-timed designs kept by the v2 design store (design_load / \
             flow_delta); loading beyond $(docv) evicts the least-recently-used handle.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log served requests and failures.")
  in
  let slow_ms_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Log every request whose execution wall time reaches $(docv) milliseconds as one \
             JSON line on stderr (trace id, kind, queue wait, wall, cache hits, worker).  0 \
             logs every request.")
  in
  let tick_ms_arg =
    Arg.(
      value & opt int 1000
      & info [ "tick-ms" ] ~docv:"MS"
          ~doc:
            "Telemetry ticker period: how often the serve loop samples counters into the \
             rolling window behind the metrics/health kinds and the top dashboard.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent timing daemon: newline-delimited JSON requests (schemas \
          rlc-service/1 and rlc-service/2) answered from warm state — characterized cells, \
          the shared Ceff result cache, a resident domain pool, and (v2) a bounded store of \
          incrementally timed designs.  Kinds: flow, xtalk, sweep_case, screen, design_load, \
          flow_delta, design_unload, ping, stats, metrics, health, shutdown.")
    Term.(
      const run $ socket_arg $ jobs_arg $ workers_arg $ queue_arg $ backlog_arg $ timeout_arg
      $ max_bytes_arg $ warm_arg $ designs_arg $ verbose_arg $ trace_arg $ metrics_json_arg
      $ slow_ms_arg $ tick_ms_arg)

(* ---------------------------------------------------------------- top *)

(* A live dashboard over the daemon's [metrics] kind: poll the socket,
   render the rolling-window digest.  Interactive terminals get an
   in-place redraw (same TTY probe as Progress); pipes get one compact
   line per poll so `top --count 1 | tee` works in scripts. *)
let top_cmd =
  let module Json = Rlc_service.Json in
  let num path j =
    (* Walk "a.b" then accept Int/Float; nan-valued fields arrive as null. *)
    let rec go parts j =
      match parts with
      | [] -> Json.get_float j
      | p :: rest -> Option.bind (Json.member p j) (go rest)
    in
    go (String.split_on_char '.' path) j
  in
  let fmt_opt fmt = function None -> "-" | Some v -> Printf.sprintf fmt v in
  let fmt_pct = function
    | None -> "-"
    | Some v -> Printf.sprintf "%.1f%%" (100. *. v)
  in
  let render ~tty ~socket n response =
    let g path = num path response in
    let kinds =
      match Option.bind (Json.member "kinds" response) Json.get_obj with
      | None -> ""
      | Some fields ->
          String.concat "  "
            (List.filter_map
               (fun (k, v) ->
                 Option.map (fun n -> Printf.sprintf "%s %d" k n) (Json.get_int v))
               fields)
    in
    if tty then begin
      print_string "\027[H\027[2J";
      Printf.printf "rlc_timing top — %s   poll %d   uptime %s   served %s (%s failed)\n"
        socket n
        (fmt_opt "%.1fs" (g "uptime_s"))
        (fmt_opt "%.0f" (g "totals.served"))
        (fmt_opt "%.0f" (g "totals.failed"));
      Printf.printf "window %s (%s samples): %s req/s   timeouts/s %s   rejects/s %s\n"
        (fmt_opt "%.1fs" (g "window.span_s"))
        (fmt_opt "%.0f" (g "window.samples"))
        (fmt_opt "%.2f" (g "window.requests_per_s"))
        (fmt_opt "%.2f" (g "window.timeouts_per_s"))
        (fmt_opt "%.2f" (g "window.rejections_per_s"));
      Printf.printf "latency p50 %s  p95 %s  p99 %s   worker utilization %s\n"
        (fmt_opt "%.3fms" (g "window.p50_ms"))
        (fmt_opt "%.3fms" (g "window.p95_ms"))
        (fmt_opt "%.3fms" (g "window.p99_ms"))
        (fmt_pct (g "window.utilization"));
      Printf.printf "queue %s/%s   workers %s   cache %s entries, window hit ratio %s\n"
        (fmt_opt "%.0f" (g "server.queue_depth"))
        (fmt_opt "%.0f" (g "server.queue_capacity"))
        (fmt_opt "%.0f" (g "server.workers"))
        (fmt_opt "%.0f" (g "cache.entries"))
        (fmt_pct (g "window.cache_hit_ratio"));
      Printf.printf "designs %s/%s resident   %s nets held   %s evictions\n"
        (fmt_opt "%.0f" (g "designs.handles"))
        (fmt_opt "%.0f" (g "designs.capacity"))
        (fmt_opt "%.0f" (g "designs.nets"))
        (fmt_opt "%.0f" (g "designs.evictions"));
      if kinds <> "" then Printf.printf "kinds: %s\n" kinds;
      flush stdout
    end
    else begin
      Printf.printf
        "req/s %s  p50 %s p95 %s p99 %s  queue %s/%s  util %s  hit %s  designs %s  served %s\n"
        (fmt_opt "%.2f" (g "window.requests_per_s"))
        (fmt_opt "%.3fms" (g "window.p50_ms"))
        (fmt_opt "%.3fms" (g "window.p95_ms"))
        (fmt_opt "%.3fms" (g "window.p99_ms"))
        (fmt_opt "%.0f" (g "server.queue_depth"))
        (fmt_opt "%.0f" (g "server.queue_capacity"))
        (fmt_pct (g "window.utilization"))
        (fmt_pct (g "window.cache_hit_ratio"))
        (fmt_opt "%.0f" (g "designs.handles"))
        (fmt_opt "%.0f" (g "totals.served"));
      flush stdout
    end
  in
  let run socket interval_ms count =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "top: cannot connect to %s: %s@." socket (Unix.error_message e);
        1
    | () ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let tty = Rlc_obs.Progress.channel_is_tty stdout in
        let rec loop n =
          if count > 0 && n > count then 0
          else begin
            output_string oc
              (Printf.sprintf "{\"schema\":\"rlc-service/1\",\"kind\":\"metrics\",\"id\":%d}\n" n);
            flush oc;
            match input_line ic with
            | exception End_of_file ->
                Format.eprintf "top: server closed the connection@.";
                1
            | line -> (
                match Json.parse line with
                | Error (pos, msg) ->
                    Format.eprintf "top: bad response at byte %d: %s@." pos msg;
                    1
                | Ok response ->
                    render ~tty ~socket n response;
                    if count > 0 && n = count then 0
                    else begin
                      Unix.sleepf (float_of_int interval_ms /. 1000.);
                      loop (n + 1)
                    end)
          end
        in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> loop 1)
  in
  let socket_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket of a running daemon.")
  in
  let interval_arg =
    Arg.(
      value & opt int 1000
      & info [ "interval-ms" ] ~docv:"MS" ~doc:"Delay between polls of the metrics kind.")
  in
  let count_arg =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"Stop after $(docv) polls (0 = run until interrupted).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard for a serving daemon: polls the metrics request kind and renders \
          req/s, latency quantiles, queue depth, worker utilization, cache hit ratio and \
          per-kind counters.  On a terminal the display redraws in place; piped output is \
          one line per poll.")
    Term.(const run $ socket_arg $ interval_arg $ count_arg)

(* --------------------------------------------------------------- spef *)

let spef_cmd =
  let run file net_name root size slew =
    let ic = open_in_bin file in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Rlc_spef.Spef.parse_res ~file content with
    | Error e ->
        Format.eprintf "%s@." (Rlc_service.Error.message e);
        1
    | Ok spef -> (
        match Rlc_spef.Spef.find_net spef net_name with
        | None ->
            Format.eprintf "net %s not found (nets: %s)@." net_name
              (String.concat ", " (List.map (fun n -> n.Rlc_spef.Spef.net_name) spef.Rlc_spef.Spef.nets));
            1
        | Some net -> (
            match Rlc_spef.Spef.to_tree net ~root with
            | Error e ->
                Format.eprintf "cannot build tree: %s@." e;
                1
            | Ok tree ->
                Format.printf "net %s: %d nodes, total cap %.1f fF@." net_name
                  (Rlc_moments.Tree.node_count tree)
                  (Rlc_num.Units.in_ff (Rlc_moments.Tree.total_cap tree));
                let m = Rlc_moments.Moments.driving_point ~order:5 tree in
                Format.printf "moments: m1=%.4g m2=%.4g m3=%.4g m4=%.4g m5=%.4g@." m.(1) m.(2)
                  m.(3) m.(4) m.(5);
                let pade = Rlc_moments.Pade.fit m in
                Format.printf "pade fit: %a (stable: %b)@." Rlc_moments.Pade.pp pade
                  (Rlc_moments.Pade.is_stable pade);
                (match size with
                | None -> ()
                | Some size ->
                    let cell = cell_or_die Rlc_devices.Tech.c018 ~size in
                    let slew_s = Rlc_num.Units.ps slew in
                    let iterate f =
                      let tr_of c =
                        Rlc_liberty.Table.ramp_time cell ~edge:Rlc_waveform.Measure.Rising
                          ~slew:slew_s ~cap:c
                      in
                      let ctot = Rlc_moments.Pade.total_cap pade in
                      let r =
                        Rlc_num.Rootfind.fixed_point_bracketed
                          (fun c -> Ceff.first_ramp pade ~f ~tr:(tr_of c))
                          ~lo:(1e-4 *. ctot) ~hi:ctot ~init:ctot
                      in
                      (r.Rlc_num.Rootfind.value, tr_of r.Rlc_num.Rootfind.value)
                    in
                    let c100, tr100 = iterate 1.0 in
                    Format.printf
                      "driver %gX @ %g ps input slew: Ceff(100%%) = %.1f fF -> Tr = %.1f ps@."
                      size slew (Rlc_num.Units.in_ff c100) (ps tr100));
                0))
  in
  let file_arg =
    Arg.(required & opt (some file) None & info [ "file" ] ~docv:"SPEF" ~doc:"SPEF file.")
  in
  let net_arg =
    Arg.(required & opt (some string) None & info [ "net" ] ~docv:"NAME" ~doc:"Net to analyze.")
  in
  let root_arg =
    Arg.(
      required & opt (some string) None & info [ "root" ] ~docv:"NODE" ~doc:"Driving-point node.")
  in
  let size_opt =
    Arg.(
      value & opt (some float) None & info [ "size" ] ~docv:"X" ~doc:"Optional driver size.")
  in
  Cmd.v
    (Cmd.info "spef" ~doc:"Moments, Pade fit and Ceff for a net from a SPEF file.")
    Term.(const run $ file_arg $ net_arg $ root_arg $ size_opt $ slew_arg)

let () =
  let info =
    Cmd.info "rlc_timing" ~version:"1.0.0"
      ~doc:"Effective-capacitance two-ramp driver model for on-chip RLC interconnect (DAC 2003)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            analyze_cmd;
            screen_cmd;
            characterize_cmd;
            sweep_cmd;
            spef_cmd;
            flow_cmd;
            optimize_cmd;
            serve_cmd;
            top_cmd;
          ]))
